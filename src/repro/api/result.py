"""Flow results: per-stage artifacts, wall-times and the metric summary.

:class:`SynthesisResult` is the classic result shape returned by
``repro.flows.synthesize`` since the first release; :class:`FlowResult`
subsumes it, adding the :class:`~repro.api.config.FlowConfig` that produced
the run, per-stage wall-times and per-stage artifacts.  Every flow run
returns a :class:`FlowResult`; the legacy name keeps working because it is
the base class.

Analysis fields (``timing``, ``power``, ``probabilities``, ``stats`` and
the metrics derived from them) are ``None`` when the corresponding analysis
pass was skipped via ``FlowConfig.analyses``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bitmatrix.builder import MatrixBuildResult
from repro.core.result import CompressionResult
from repro.netlist.core import Bus, Netlist
from repro.netlist.stats import NetlistStats
from repro.opt.report import OptReport
from repro.power.probability import ProbabilityResult
from repro.power.switching import PowerResult
from repro.timing.arrival import TimingResult
from repro.utils.metrics import summary_line


@dataclass
class SynthesisResult:
    """Everything produced by one synthesis run of one design.

    Metric fields derived from a skipped analysis pass are ``None`` (the
    default full-analysis flow always populates them).
    """

    design_name: str
    method: str
    netlist: Netlist
    output_bus: Bus
    output_width: int
    final_adder: str
    library_name: str
    delay_ns: Optional[float]
    area: Optional[float]
    total_energy: Optional[float]
    tree_energy: Optional[float]
    cell_count: int
    fa_count: int
    ha_count: int
    max_final_arrival: float
    timing: Optional[TimingResult]
    power: Optional[PowerResult]
    probabilities: Optional[ProbabilityResult]
    stats: Optional[NetlistStats]
    compression: Optional[CompressionResult] = None
    matrix_build: Optional[MatrixBuildResult] = None
    notes: List[str] = field(default_factory=list)
    opt_level: int = 0
    opt_report: Optional[OptReport] = None
    pre_opt_stats: Optional[NetlistStats] = None

    def summary(self) -> str:
        """One-line result summary."""
        text = summary_line(
            self.design_name,
            self.method,
            self.delay_ns,
            self.area,
            self.tree_energy,
            self.cell_count,
            self.fa_count,
            self.ha_count,
        )
        if self.opt_level:
            text += f"  -O{self.opt_level}"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-able metric summary (no netlist, no analysis internals).

        This is the record shape used by the exploration engine, its result
        cache and the ``--json`` CLI outputs;
        :class:`repro.explore.records.PointMetrics` is its typed mirror.
        Metrics of skipped analyses are ``None``.
        """
        return {
            "design_name": self.design_name,
            "method": self.method,
            "final_adder": self.final_adder,
            "library_name": self.library_name,
            "output_width": self.output_width,
            "delay_ns": self.delay_ns,
            "area": self.area,
            "total_energy": self.total_energy,
            "tree_energy": self.tree_energy,
            "cell_count": self.cell_count,
            "fa_count": self.fa_count,
            "ha_count": self.ha_count,
            "max_final_arrival": self.max_final_arrival,
            "opt_level": self.opt_level,
            "pre_opt_cell_count": (
                self.pre_opt_stats.num_cells if self.pre_opt_stats is not None else None
            ),
            "opt_cells_removed": (
                self.opt_report.cells_removed if self.opt_report is not None else None
            ),
            "notes": list(self.notes),
        }


@dataclass
class FlowResult(SynthesisResult):
    """A :class:`SynthesisResult` plus the config and per-stage telemetry."""

    #: the (validated) configuration that produced this run
    config: Optional["FlowConfig"] = None  # noqa: F821 - forward ref, no cycle
    #: technology-mapping report (None when ``target_lib`` was ``"generic"``)
    map_report: Optional["MapReport"] = None  # noqa: F821 - forward ref
    #: physical-design report (None when ``place`` was off)
    place_report: Optional["PlaceReport"] = None  # noqa: F821 - forward ref
    #: the analysis passes that actually ran
    analyses: Tuple[str, ...] = ()
    #: wall time per executed stage (and per analysis, ``analyze:<name>``) —
    #: a derived view of the flow's ``flow.<stage>`` spans (see
    #: :mod:`repro.obs`); a stage that raises still records its partial time
    stage_times: Dict[str, float] = field(default_factory=dict)
    #: per-stage artifacts (matrix build, compression, opt report, analyses)
    stage_artifacts: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The base metric record plus the full (schema-driven) config.

        New :class:`FlowConfig` knobs automatically appear under ``config``
        in every cached record and JSON artifact — nothing to hand-wire.
        Stage wall-times are deliberately *not* part of the record so that
        records stay deterministic (cache round-trips compare equal).
        """
        out = super().to_dict()
        out["analyses"] = list(self.analyses)
        out["config"] = self.config.to_dict() if self.config is not None else None
        out["map_report"] = (
            self.map_report.to_dict() if self.map_report is not None else None
        )
        out["place_report"] = (
            self.place_report.to_dict() if self.place_report is not None else None
        )
        # flat physical-design headline metrics: CSV columns, QoR records
        # and the history sentinel consume these without digging into the
        # nested report (None when the place stage was skipped)
        place = self.place_report
        out["place_hpwl"] = round(place.total_hpwl, 6) if place is not None else None
        out["cts_skew_ns"] = place.cts_skew_ns if place is not None else None
        return out

    def stage_report(self) -> str:
        """Small text table of per-stage wall times.

        For the full nested picture (per-pass, per-analysis, per-candidate
        spans) run the flow under a tracer — ``--trace`` on the CLI or
        :func:`repro.obs.tracing` around :meth:`Flow.run`.
        """
        lines = ["stage times:"]
        for name, elapsed in self.stage_times.items():
            lines.append(f"  {name:<16} {elapsed * 1e3:8.2f} ms")
        return "\n".join(lines)
