"""argparse option generation from the :class:`FlowConfig` field schema.

The CLI never hand-declares a flow knob: ``synth``/``compare`` call
:func:`add_flow_options` (one flag per config field) and ``explore`` calls
:func:`add_sweep_options` (one multi-value axis flag per sweepable field,
plus the per-sweep scalar flags).  Adding a field to :class:`FlowConfig`
therefore adds the CLI surface, the sweep axis and the cache-key entry in
one place.

Boolean axes are exposed with the ``off`` / ``on`` / ``both`` convention
(``--csd both`` sweeps the coefficient recoding on and off).
"""

from __future__ import annotations

import argparse
from typing import Dict, Mapping, Optional, Sequence

from repro.api.config import FieldSpec, FlowConfig, config_fields

#: tri-state values accepted by boolean sweep axes
_BOOL_AXIS_VALUES: Dict[str, Sequence[bool]] = {
    "off": (False,),
    "on": (True,),
    "both": (False, True),
}


def _selected(
    spec: FieldSpec,
    include: Optional[Sequence[str]],
    exclude: Sequence[str],
) -> bool:
    if include is not None and spec.name not in include:
        return False
    return spec.name not in exclude


def _add_scalar_argument(parser: argparse.ArgumentParser, spec: FieldSpec) -> None:
    """One singular flag for one config field (synth/compare style)."""
    if spec.kind == "bool":
        parser.add_argument(
            spec.flag, dest=spec.name, action="store_true", help=spec.help
        )
    elif spec.kind == "names":
        parser.add_argument(
            spec.flag,
            dest=spec.name,
            nargs="+",
            choices=spec.choices,
            default=list(spec.default),
            metavar="NAME",
            help=f"{spec.help} (choices: {', '.join(spec.choices)})",
        )
    elif spec.kind in ("int", "optional_int"):
        parser.add_argument(
            spec.flag,
            dest=spec.name,
            type=int,
            choices=spec.choices,
            default=spec.default,
            metavar="N",
            help=spec.help,
        )
    else:
        parser.add_argument(
            spec.flag,
            dest=spec.name,
            choices=spec.choices,
            default=spec.default,
            help=spec.help,
        )


def add_flow_options(
    parser: argparse.ArgumentParser,
    include: Optional[Sequence[str]] = None,
    exclude: Sequence[str] = (),
) -> None:
    """Add one CLI flag per :class:`FlowConfig` field to ``parser``.

    ``include`` restricts generation to the named fields; ``exclude`` drops
    fields (e.g. ``compare`` excludes ``method`` and adds the multi-valued
    ``--methods`` axis instead).
    """
    for spec in config_fields():
        if spec.flag is None or not _selected(spec, include, exclude):
            continue
        _add_scalar_argument(parser, spec)


def flow_config_from_args(
    args: argparse.Namespace, **overrides: object
) -> FlowConfig:
    """Build a validated :class:`FlowConfig` from parsed CLI arguments.

    Only attributes that exist on ``args`` are consumed, so parsers that
    generated a subset of the flags (``include=...``) work transparently.
    """
    values: Dict[str, object] = {}
    for spec in config_fields():
        if hasattr(args, spec.name):
            values[spec.name] = getattr(args, spec.name)
    values.update(overrides)
    return FlowConfig.from_dict(values)


def add_sweep_options(
    parser: argparse.ArgumentParser,
    include: Optional[Sequence[str]] = None,
    exclude: Sequence[str] = (),
    defaults: Optional[Mapping[str, Sequence]] = None,
) -> None:
    """Add the explore-style sweep flags generated from the schema.

    Sweepable fields get a multi-value axis flag (``--methods``,
    ``--opt-levels``, tri-state ``--csd`` for booleans); per-sweep scalars
    (``--random-probabilities``, ``--analyses``, ``--opt-validate``) reuse
    their singular form.  ``defaults`` overrides the generated default of an
    axis, keyed by the axis attribute name (e.g. ``{"methods": [...]}``).
    """
    defaults = defaults or {}
    for spec in config_fields():
        if not _selected(spec, include, exclude):
            continue
        if spec.axis is None:
            if spec.flag is not None:
                _add_scalar_argument(parser, spec)
            continue
        if spec.kind == "bool":
            parser.add_argument(
                spec.axis_flag,
                dest=spec.axis,
                choices=tuple(_BOOL_AXIS_VALUES),
                default="off",
                help=f"sweep: {spec.help}",
            )
            continue
        parser.add_argument(
            spec.axis_flag,
            dest=spec.axis,
            nargs="+",
            type=int if spec.kind in ("int", "optional_int") else str,
            choices=spec.choices,
            default=list(defaults.get(spec.axis, (spec.default,))),
            metavar=spec.name.upper(),
            help=f"sweep: {spec.help}",
        )


def add_observability_options(parser: argparse.ArgumentParser) -> None:
    """Add the shared observability flags (``--trace`` / ``--profile`` / ...).

    Every flow-running subcommand gets the same flags; the CLI driver
    consumes them uniformly (see ``repro.cli``): ``--trace`` installs a
    tracer for the whole command and writes a Chrome trace-event JSON file,
    ``--profile`` prints the top-span table to stderr, ``--log-level``
    configures the ``repro`` logging bridge, ``--manifest`` writes the run
    manifest and ``--history`` appends the run record to a
    :class:`repro.obs.HistoryStore`.  ``--events`` / ``--live`` install a
    :class:`repro.obs.EventBus` streaming live telemetry (JSONL file and/or
    stderr progress line) and ``--point-timeout`` / ``--stall-factor`` tune
    the sweep engine's straggler re-dispatch and stall flagging.
    """
    from repro.obs import LOG_LEVELS

    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record spans and write a Chrome trace-event JSON file "
        "(open in Perfetto / chrome://tracing)",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="print the top spans by total time to stderr after the run",
    )
    group.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of diagnostic output on stderr (default: info)",
    )
    group.add_argument(
        "--manifest",
        metavar="FILE",
        default=None,
        help="write a JSON run manifest (config identity, host, timings)",
    )
    group.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="append this run's record (QoR, span summary, counters, "
        "manifest) to the run-history store in DIR; implies span "
        "collection (default: $REPRO_HISTORY when set)",
    )
    group.add_argument(
        "--events",
        metavar="DIR",
        default=None,
        help="stream live telemetry events (points, heartbeats, stalls, "
        "retries, resource gauges) to DIR/events.jsonl; follow with "
        "'repro obs tail'",
    )
    group.add_argument(
        "--live",
        action="store_true",
        help="render a live progress line (done/total, ETA, cache hits, "
        "stalls) on stderr while the command runs",
    )
    group.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard wall-time budget per sweep point (parallel sweeps): "
        "a point in flight longer is abandoned and re-dispatched, then "
        "recorded as errored — a hung worker cannot hang the sweep",
    )
    group.add_argument(
        "--stall-factor",
        type=float,
        default=4.0,
        metavar="FACTOR",
        help="flag a sweep point as stalling once it has been in flight "
        "longer than FACTOR x the rolling median point time (default: 4; "
        "0 or negative disables stall detection)",
    )


def sweep_spec_from_args(
    args: argparse.Namespace,
    designs: Sequence[str],
    constraints: Sequence = (),
):
    """Build a :class:`repro.explore.SweepSpec` from parsed explore args."""
    from repro.explore.spec import SweepSpec

    kwargs: Dict[str, object] = {}
    for spec in config_fields():
        if spec.axis is not None and hasattr(args, spec.axis):
            values = getattr(args, spec.axis)
            if spec.kind == "bool" and isinstance(values, str):
                values = _BOOL_AXIS_VALUES[values]
            kwargs[spec.axis] = tuple(values)
        elif spec.axis is None and hasattr(args, spec.name):
            value = getattr(args, spec.name)
            if spec.kind == "names":
                value = tuple(value)
            kwargs[spec.name] = value
    return SweepSpec(designs=tuple(designs), constraints=tuple(constraints), **kwargs)
