"""The unified flow configuration schema: one dataclass drives everything.

:class:`FlowConfig` is the single source of truth for every synthesis knob.
Each field carries metadata (choices, CLI flag, sweep-axis name, help text,
cache relevance) introspectable through :func:`config_fields`, so the other
layers *derive* their surface from this schema instead of re-declaring it:

* ``repro.flows.synthesize(**kwargs)`` is a thin shim that builds a
  :class:`FlowConfig` from its keyword arguments;
* the CLI generates its ``synth`` / ``compare`` / ``explore`` options from
  the field metadata (:mod:`repro.api.options`);
* ``repro.explore.spec`` builds its ``SweepPoint`` / ``SweepSpec``
  dataclasses dynamically from the same fields, so every knob is
  automatically a sweep axis and part of the result-cache key;
* :meth:`FlowConfig.cache_key` is the canonical cache identity — adding a
  field here is all it takes for a new knob to flow through sweeps, CLI
  flags and cached records.

A config is frozen, validates itself on construction (raising
:class:`repro.errors.ConfigError`) and serializes canonically through
``to_dict`` / ``from_dict``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.adders.factory import FINAL_ADDER_KINDS
from repro.baselines.multipliers import MULTIPLIER_STYLES
from repro.errors import ConfigError
from repro.map.targets import (
    GENERIC_TARGET,
    MAP_OBJECTIVES,
    MAP_OBJECTIVE_HELP,
    TARGET_LIB_HELP,
    TARGET_NAMES,
)
from repro.opt.manager import OPT_LEVELS, OPT_LEVEL_HELP
from repro.tech.default_libs import LIBRARY_NAMES

#: methods that go through the addend matrix + compressor tree pipeline
MATRIX_METHODS = (
    "fa_aot",
    "fa_alp",
    "fa_random",
    "wallace",
    "dadda",
    "csa_opt",
    "column_isolation",
)

#: every method accepted by the flow
SYNTHESIS_METHODS = MATRIX_METHODS + ("conventional",)

#: partial-product generation schemes for the matrix methods
MULTIPLICATION_STYLES = ("and_array", "booth")

#: the analyses run by default (full analysis, the paper's protocol)
DEFAULT_ANALYSES = ("timing", "power", "stats")


def _registered_analyses() -> Tuple[str, ...]:
    """Valid ``analyses`` values; resolved lazily from the stage registry."""
    from repro.api.stages import analysis_names

    return analysis_names()


def _meta(
    help: str,
    *,
    kind: str = "str",
    choices: object = None,
    flag: Optional[str] = None,
    axis: Optional[str] = None,
    axis_flag: Optional[str] = None,
    cache: bool = True,
    fuzz: Optional[Tuple] = None,
) -> Dict[str, Dict[str, object]]:
    """Build the ``field(metadata=...)`` payload for one config knob.

    ``fuzz`` pins the verifier's sampling domain for choice-free fields
    whose full value space would be invalid or pathologically expensive to
    fuzz (e.g. ``fabric_rows``, where a random integer is either rejected
    at construction or describes a fabric of millions of sites); fields
    without it derive their domain from ``choices``/``kind`` as usual.
    """
    return {
        "repro": {
            "help": help,
            "kind": kind,
            "choices": choices,
            "flag": flag,
            "axis": axis,
            "axis_flag": axis_flag,
            "cache": cache,
            "fuzz": fuzz,
        }
    }


@dataclass(frozen=True)
class FieldSpec:
    """Resolved, introspection-friendly view of one :class:`FlowConfig` field.

    ``kind`` is one of ``"str"``, ``"bool"``, ``"int"``, ``"optional_int"``
    or ``"names"`` (a tuple of strings, e.g. ``analyses``).  ``axis`` names
    the plural sweep-axis attribute on ``SweepSpec`` (``None`` = the field is
    a per-sweep scalar, not an axis).  ``cache_relevant`` fields are part of
    :meth:`FlowConfig.cache_key` and of every ``SweepPoint``.
    """

    name: str
    default: object
    kind: str
    help: str
    choices: Optional[Tuple]
    flag: Optional[str]
    axis: Optional[str]
    axis_flag: Optional[str]
    cache_relevant: bool
    #: explicit fuzz-domain override for choice-free fields (None = derive)
    fuzz: Optional[Tuple] = None


@dataclass(frozen=True)
class FlowConfig:
    """Declarative, validated configuration of one synthesis flow run.

    Every knob of the flow lives here — see the module docstring for how the
    CLI, the sweep engine and the cache all derive from this schema.  The
    design itself is *not* configuration: it is the input passed to
    :meth:`repro.api.Flow.run`.
    """

    method: str = field(
        default="fa_aot",
        metadata=_meta(
            "compressor-tree allocation method",
            choices=SYNTHESIS_METHODS,
            flag="--method",
            axis="methods",
            axis_flag="--methods",
        ),
    )
    final_adder: str = field(
        default="cla",
        metadata=_meta(
            "final carry-propagate adder architecture",
            choices=FINAL_ADDER_KINDS,
            flag="--final-adder",
            axis="final_adders",
            axis_flag="--final-adders",
        ),
    )
    library: str = field(
        default="generic_035",
        metadata=_meta(
            "technology library",
            choices=tuple(LIBRARY_NAMES),
            flag="--library",
            axis="libraries",
            axis_flag="--libraries",
        ),
    )
    multiplication_style: str = field(
        default="and_array",
        metadata=_meta(
            "partial-product generation for the matrix methods",
            choices=MULTIPLICATION_STYLES,
            flag="--multiplication-style",
            axis="multiplication_styles",
            axis_flag="--multiplication-styles",
        ),
    )
    use_csd_coefficients: bool = field(
        default=False,
        metadata=_meta(
            "recode constant coefficients in canonical signed-digit form",
            kind="bool",
            flag="--csd",
            axis="csd_options",
            axis_flag="--csd",
        ),
    )
    fold_square_products: bool = field(
        default=False,
        metadata=_meta(
            "fold symmetric partial products of x*x terms (squarer optimization)",
            kind="bool",
            flag="--fold-square-products",
            axis="fold_square_options",
            axis_flag="--fold-square-products",
        ),
    )
    multiplier_style: str = field(
        default="wallace_cpa",
        metadata=_meta(
            "multiplier macro style for the conventional method",
            choices=MULTIPLIER_STYLES,
            flag="--multiplier-style",
            axis="multiplier_styles",
            axis_flag="--multiplier-styles",
        ),
    )
    random_probabilities: bool = field(
        default=False,
        metadata=_meta(
            "randomize input signal probabilities (Table 2 protocol)",
            kind="bool",
            flag="--random-probabilities",
        ),
    )
    opt_level: int = field(
        default=0,
        metadata=_meta(
            OPT_LEVEL_HELP,
            kind="int",
            choices=OPT_LEVELS,
            flag="--opt",
            axis="opt_levels",
            axis_flag="--opt-levels",
        ),
    )
    target_lib: str = field(
        default=GENERIC_TARGET,
        metadata=_meta(
            TARGET_LIB_HELP,
            choices=TARGET_NAMES,
            flag="--target-lib",
            axis="target_libs",
            axis_flag="--target-libs",
        ),
    )
    map_objective: str = field(
        default="balanced",
        metadata=_meta(
            MAP_OBJECTIVE_HELP,
            choices=MAP_OBJECTIVES,
            flag="--map-objective",
            axis="map_objectives",
            axis_flag="--map-objectives",
        ),
    )
    seed: Optional[int] = field(
        default=2000,
        metadata=_meta(
            "random seed for fa_random / random probabilities",
            kind="optional_int",
            flag="--seed",
            axis="seeds",
            axis_flag="--seeds",
        ),
    )
    analyses: Tuple[str, ...] = field(
        default=DEFAULT_ANALYSES,
        metadata=_meta(
            "analysis passes to run on the finished netlist "
            "(skipping passes speeds up large sweeps)",
            kind="names",
            choices=_registered_analyses,
            flag="--analyses",
        ),
    )
    place: bool = field(
        default=False,
        metadata=_meta(
            "run the physical-design backend: annealing placement, "
            "wire-aware timing and H-tree clock synthesis",
            kind="bool",
            flag="--place",
            axis="place_options",
            axis_flag="--place",
        ),
    )
    fabric_rows: Optional[int] = field(
        default=None,
        metadata=_meta(
            "placement fabric rows (default: auto-sized for the netlist)",
            kind="optional_int",
            flag="--fabric-rows",
            axis="fabric_rows_values",
            axis_flag="--fabric-rows",
            fuzz=(None,),
        ),
    )
    fabric_cols: Optional[int] = field(
        default=None,
        metadata=_meta(
            "placement fabric columns (default: auto-sized for the netlist)",
            kind="optional_int",
            flag="--fabric-cols",
            axis="fabric_cols_values",
            axis_flag="--fabric-cols",
            fuzz=(None,),
        ),
    )
    place_seed: int = field(
        default=1,
        metadata=_meta(
            "random seed of the annealing placer",
            kind="int",
            flag="--place-seed",
            axis="place_seeds",
            axis_flag="--place-seeds",
        ),
    )
    place_iters: int = field(
        default=2000,
        metadata=_meta(
            "annealing moves proposed by the placer",
            kind="int",
            flag="--place-iters",
            axis="place_iters_values",
            axis_flag="--place-iters",
            fuzz=(200, 800),
        ),
    )
    opt_validate: bool = field(
        default=False,
        metadata=_meta(
            "debug: structurally validate the netlist after every opt pass",
            kind="bool",
            flag="--opt-validate",
            cache=False,
        ),
    )
    map_validate: bool = field(
        default=False,
        metadata=_meta(
            "debug: structurally validate the netlist after every mapping pass",
            kind="bool",
            flag="--map-validate",
            cache=False,
        ),
    )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        # normalize analyses to a deduplicated tuple (order-preserving) so
        # configs stay hashable and no pass can be scheduled twice
        analyses = (self.analyses,) if isinstance(self.analyses, str) else self.analyses
        normalized = tuple(dict.fromkeys(analyses))
        if normalized != self.analyses:
            object.__setattr__(self, "analyses", normalized)
        for spec in config_fields():
            value = getattr(self, spec.name)
            self._check_type(spec, value)
            if spec.choices is None:
                continue
            if spec.kind == "names":
                unknown = [v for v in value if v not in spec.choices]
                if unknown:
                    raise ConfigError(
                        f"unknown {spec.name} {unknown!r}; "
                        f"expected values from {spec.choices}"
                    )
            elif value not in spec.choices:
                raise ConfigError(
                    f"unknown {spec.name} {value!r}; expected one of {spec.choices}"
                )
        # physical-design knobs have open integer ranges; reject the
        # geometrically meaningless values at construction time
        for name in ("fabric_rows", "fabric_cols"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigError(
                    f"{name} must be a positive site count, got {value}"
                )
        if self.place_iters < 0:
            raise ConfigError(
                f"place_iters must be non-negative, got {self.place_iters}"
            )

    @staticmethod
    def _check_type(spec: FieldSpec, value: object) -> None:
        ok = True
        if spec.kind == "bool":
            ok = isinstance(value, bool)
        elif spec.kind == "int":
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif spec.kind == "optional_int":
            ok = value is None or (isinstance(value, int) and not isinstance(value, bool))
        elif spec.kind == "names":
            ok = isinstance(value, tuple) and all(isinstance(v, str) for v in value)
        else:  # "str"
            ok = isinstance(value, str)
        if not ok:
            raise ConfigError(
                f"bad value {value!r} for {spec.name} (expected {spec.kind})"
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view with JSON-stable value types (tuples -> lists)."""
        out: Dict[str, object] = {}
        for spec in config_fields():
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FlowConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected (a typo'd knob must not silently
        disappear); missing keys fall back to the schema defaults.
        """
        known = {spec.name for spec in config_fields()}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown FlowConfig field(s) {unknown!r}; expected a subset of "
                f"{sorted(known)!r}"
            )
        return cls(**dict(data))

    # ------------------------------------------------------------------
    # canonicalization and cache identity
    # ------------------------------------------------------------------

    def canonical(self) -> "FlowConfig":
        """Normalized copy with don't-care knobs reset to their defaults.

        Matrix-construction knobs are reset for the matrix-free
        ``conventional`` method (and the conventional-only multiplier style
        is reset for matrix methods); the seed is reset when nothing random
        consumes it (only ``fa_random`` and the random-probability protocol
        do); the mapping objective is reset when ``target_lib`` is the
        identity ``"generic"`` target (nothing is mapped, so the objective
        cannot matter); the fabric/placer knobs are reset when ``place``
        is off (the stage is skipped, so they cannot matter); ``analyses``
        is deduplicated and sorted into registry order.  Two configs
        describing the same computation therefore share one
        :meth:`cache_key`.
        """
        defaults = {spec.name: spec.default for spec in config_fields()}
        cfg = self
        if cfg.method == "conventional":
            if (
                cfg.multiplication_style != defaults["multiplication_style"]
                or cfg.use_csd_coefficients
                or cfg.fold_square_products
            ):
                cfg = replace(
                    cfg,
                    multiplication_style=defaults["multiplication_style"],
                    use_csd_coefficients=defaults["use_csd_coefficients"],
                    fold_square_products=defaults["fold_square_products"],
                )
        elif cfg.multiplier_style != defaults["multiplier_style"]:
            cfg = replace(cfg, multiplier_style=defaults["multiplier_style"])
        if cfg.method != "fa_random" and not cfg.random_probabilities:
            if cfg.seed != defaults["seed"]:
                cfg = replace(cfg, seed=defaults["seed"])
        if cfg.target_lib == GENERIC_TARGET:
            if cfg.map_objective != defaults["map_objective"]:
                cfg = replace(cfg, map_objective=defaults["map_objective"])
        if not cfg.place:
            # with the place stage skipped no fabric/placer knob can matter
            place_knobs = ("fabric_rows", "fabric_cols", "place_seed", "place_iters")
            if any(getattr(cfg, name) != defaults[name] for name in place_knobs):
                cfg = replace(cfg, **{name: defaults[name] for name in place_knobs})
        order = {name: i for i, name in enumerate(_registered_analyses())}
        analyses = tuple(
            sorted(dict.fromkeys(cfg.analyses), key=lambda name: order.get(name, 99))
        )
        if analyses != cfg.analyses:
            cfg = replace(cfg, analyses=analyses)
        return cfg

    def cache_dict(self) -> Dict[str, object]:
        """Canonical dict of the cache-relevant fields only."""
        cfg = self.canonical()
        out: Dict[str, object] = {}
        for spec in config_fields():
            if not spec.cache_relevant:
                continue
            value = getattr(cfg, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            out[spec.name] = value
        return out

    def cache_key(self) -> str:
        """Stable content key: canonical JSON of the cache-relevant fields.

        Independent of field declaration order (keys are sorted) and of
        don't-care knobs (see :meth:`canonical`).
        """
        return json.dumps(self.cache_dict(), sort_keys=True, separators=(",", ":"))

    def cache_digest(self) -> str:
        """Short hex digest of :meth:`cache_key`."""
        return hashlib.sha256(self.cache_key().encode("utf-8")).hexdigest()[:32]


#: memoized (registry_version, specs); rebuilt when the analysis registry
#: changes so late ``register_analysis`` calls stay visible
_SPEC_CACHE: Optional[Tuple[int, Tuple[FieldSpec, ...]]] = None


def config_fields() -> Tuple[FieldSpec, ...]:
    """The resolved :class:`FieldSpec` of every :class:`FlowConfig` field.

    This is the introspection surface the CLI generator and the sweep-spec
    builder consume; callable ``choices`` (e.g. the analysis registry) are
    resolved at call time so late registrations are visible.  The result is
    memoized against the analysis-registry version — this runs on every
    config construction, which sweeps do thousands of times.
    """
    global _SPEC_CACHE
    from repro.api.stages import analysis_registry_version

    version = analysis_registry_version()
    if _SPEC_CACHE is not None and _SPEC_CACHE[0] == version:
        return _SPEC_CACHE[1]
    specs = []
    for f in fields(FlowConfig):
        meta = f.metadata["repro"]
        choices = meta["choices"]
        if callable(choices):
            choices = tuple(choices())
        specs.append(
            FieldSpec(
                name=f.name,
                default=f.default,
                kind=meta["kind"],
                help=meta["help"],
                choices=tuple(choices) if choices is not None else None,
                flag=meta["flag"],
                axis=meta["axis"],
                axis_flag=meta["axis_flag"],
                cache_relevant=meta["cache"],
                fuzz=meta["fuzz"],
            )
        )
    _SPEC_CACHE = (version, tuple(specs))
    return _SPEC_CACHE[1]


def config_field(name: str) -> FieldSpec:
    """The :class:`FieldSpec` for one field name (raises on unknown names)."""
    for spec in config_fields():
        if spec.name == name:
            return spec
    raise ConfigError(f"unknown FlowConfig field {name!r}")


def library_field_value(library: Optional[object]) -> str:
    """The ``library`` config value matching a :class:`TechLibrary` object.

    Custom library objects whose name is not a registered library keep the
    schema default in the config (the object itself is still used by the
    flow — an explicit library argument always wins over the config name).
    Note that for such custom libraries the embedded config (and therefore
    ``cache_key()``) cannot describe the run: the authoritative library of
    a result is always ``FlowResult.library_name``, and runs with custom
    library objects must not be keyed by ``cache_key()`` (the registry-name
    based explore cache never sees them).
    """
    spec = config_field("library")
    if library is not None and getattr(library, "name", None) in spec.choices:
        return library.name  # type: ignore[union-attr]
    return spec.default  # type: ignore[return-value]
