"""Stand-alone multiplier generators used by the conventional RTL baseline.

A conventional flow maps every ``*`` operator of the RTL onto a multiplier
macro whose output is an ordinary binary number — i.e. a carry-propagate adder
sits at the end of every multiplier.  Two macro styles are provided:

* ``"wallace_cpa"`` (default): AND-array partial products, classic Wallace
  reduction, carry-lookahead final adder.  This is what a synthesis library
  multiplier looks like and is the fair conventional reference.
* ``"array"``: AND-array partial products accumulated row by row with
  ripple-carry adders — the slower, smaller schoolbook array multiplier, used
  by the ablation benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.adders.factory import build_final_adder
from repro.adders.ripple import ripple_carry_adder
from repro.bitmatrix.addend import Addend
from repro.bitmatrix.matrix import AddendMatrix
from repro.baselines.wallace import wallace_reduce
from repro.core.delay_model import FADelayModel
from repro.core.power_model import FAPowerModel
from repro.errors import NetlistError
from repro.netlist.cells import CellType
from repro.netlist.core import Bus, Net, Netlist

MULTIPLIER_STYLES = ("wallace_cpa", "array")


def _partial_product_net(netlist: Netlist, bit_a: Net, bit_b: Net) -> Net:
    """AND of two bits with constant folding."""
    if bit_a.is_constant:
        return bit_b if bit_a.const_value == 1 else netlist.const(0)
    if bit_b.is_constant:
        return bit_a if bit_b.const_value == 1 else netlist.const(0)
    return netlist.add_cell(CellType.AND2, {"a": bit_a, "b": bit_b}).outputs["y"]


def unsigned_multiplier(
    netlist: Netlist,
    operand_a: Bus,
    operand_b: Bus,
    result_width: int,
    style: str = "wallace_cpa",
    final_adder: str = "cla",
    name: str = "prod",
    delay_model: Optional[FADelayModel] = None,
    power_model: Optional[FAPowerModel] = None,
) -> Bus:
    """Multiply two unsigned buses, truncating the result to ``result_width``."""
    if style not in MULTIPLIER_STYLES:
        raise NetlistError(
            f"unknown multiplier style {style!r}; expected one of {MULTIPLIER_STYLES}"
        )
    if result_width <= 0:
        raise NetlistError(f"multiplier result width must be positive, got {result_width}")

    if style == "array":
        return _array_multiplier(netlist, operand_a, operand_b, result_width, name)

    delay_model = delay_model or FADelayModel()
    power_model = power_model or FAPowerModel()
    matrix = AddendMatrix(result_width, name=f"{name}_pp")
    for i, bit_a in enumerate(operand_a.nets):
        for j, bit_b in enumerate(operand_b.nets):
            column = i + j
            if column >= result_width:
                continue
            product = _partial_product_net(netlist, bit_a, bit_b)
            if product.is_constant and product.const_value == 0:
                continue
            matrix.add(Addend(product, column, origin="pp"))
    reduction = wallace_reduce(netlist, matrix, delay_model, power_model)
    row_nets = [[a.net if a is not None else None for a in row] for row in reduction.rows]
    return build_final_adder(
        netlist, row_nets[0], row_nets[1], result_width, kind=final_adder, name=name
    )


def _array_multiplier(
    netlist: Netlist,
    operand_a: Bus,
    operand_b: Bus,
    result_width: int,
    name: str,
) -> Bus:
    """Schoolbook array multiplier: one ripple-carry accumulation per row."""
    zero = netlist.const(0)
    accumulator: List[Net] = [zero] * result_width
    for j, bit_b in enumerate(operand_b.nets):
        if j >= result_width:
            break
        row: List[Optional[Net]] = [None] * result_width
        for i, bit_a in enumerate(operand_a.nets):
            column = i + j
            if column >= result_width:
                continue
            product = _partial_product_net(netlist, bit_a, bit_b)
            row[column] = product
        partial = ripple_carry_adder(
            netlist, accumulator, row, result_width, name=f"{name}_acc{j}"
        )
        accumulator = list(partial.nets)
    return Bus(name, accumulator)
