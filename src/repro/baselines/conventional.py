"""Conventional operator-level (RTL) synthesis baseline.

The paper's "Convent." column stands for the usual two-step flow: every
operator of the RTL description is mapped onto its own module — additions and
subtractions onto carry-propagate adders, multiplications onto multiplier
macros — and logic synthesis then optimizes the resulting gate network.  The
defining structural property is that a carry-propagate adder sits at *every*
operator boundary, which is what makes the conventional design slower and
larger than a globally carry-save one.

This module reproduces that structure:

* operands and intermediate results are ordinary binary words (no carry-save
  signals cross operator boundaries);
* ``+``/``-`` become carry-lookahead adders, ``*`` becomes a multiplier macro
  (Wallace tree + CLA by default — see :mod:`repro.baselines.multipliers`);
* addition/subtraction chains are flattened and rebuilt as balanced operator
  trees, the standard RTL-level timing optimization;
* intermediate widths follow the natural growth of the operation
  (max+1 for add/sub, sum of widths for multiply), capped at the output width
  since the result is taken modulo ``2**W``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro.adders.cla import carry_lookahead_adder
from repro.adders.factory import build_final_adder
from repro.baselines.multipliers import unsigned_multiplier
from repro.errors import DesignError, ExpressionError
from repro.expr.ast import Add, Const, Expression, Mul, Neg, Sub, Var
from repro.expr.signals import SignalSpec
from repro.netlist.cells import CellType
from repro.netlist.core import Bus, Net, Netlist
from repro.tech.library import TechLibrary
from repro.utils.bits import bit_length


class _Operand(NamedTuple):
    """An intermediate word: its bus, and whether its MSB is a sign bit."""

    bus: Bus
    signed: bool

    @property
    def width(self) -> int:
        return self.bus.width


@dataclass
class ConventionalResult:
    """Netlist produced by the conventional operator-level flow."""

    netlist: Netlist
    output_bus: Bus
    output_width: int
    adder_kind: str
    multiplier_style: str
    operator_count: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


class _ConventionalBuilder:
    """Recursive operator-level netlist construction over the expression AST."""

    def __init__(
        self,
        netlist: Netlist,
        signals: Mapping[str, SignalSpec],
        output_width: int,
        adder_kind: str,
        multiplier_style: str,
        balance_operator_trees: bool,
    ) -> None:
        self.netlist = netlist
        self.signals = signals
        self.output_width = output_width
        self.adder_kind = adder_kind
        self.multiplier_style = multiplier_style
        self.balance = balance_operator_trees
        self.input_buses: Dict[str, Bus] = {}
        self.operator_count: Dict[str, int] = {"add": 0, "sub": 0, "mul": 0}
        self._name_counter = 0

    # ------------------------------------------------------------ primitives
    def _fresh_name(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}_{self._name_counter}"

    def _cap(self, width: int) -> int:
        return max(1, min(width, self.output_width))

    def _const_bus(self, value: int, width: int) -> Bus:
        bits = [
            self.netlist.const((value >> i) & 1) for i in range(width)
        ]
        return Bus(self._fresh_name("const"), bits)

    def _extend(self, operand: _Operand, width: int) -> Bus:
        """Zero- or sign-extend an operand's bus to ``width`` bits."""
        if width <= operand.width:
            return Bus(operand.bus.name, operand.bus.nets[:width])
        if operand.signed:
            fill: Net = operand.bus.nets[-1]
        else:
            fill = self.netlist.const(0)
        return Bus(operand.bus.name, list(operand.bus.nets) + [fill] * (width - operand.width))

    def _invert(self, bus: Bus) -> List[Net]:
        inverted: List[Net] = []
        for net in bus.nets:
            if net.is_constant:
                inverted.append(self.netlist.const(1 - (net.const_value or 0)))
            else:
                cell = self.netlist.add_cell(CellType.NOT, {"a": net})
                inverted.append(cell.outputs["y"])
        return inverted

    def _add(self, left: _Operand, right: _Operand) -> _Operand:
        width = self._cap(max(left.width, right.width) + 1)
        bus_a = self._extend(left, width)
        bus_b = self._extend(right, width)
        self.operator_count["add"] += 1
        result = build_final_adder(
            self.netlist,
            bus_a.nets,
            bus_b.nets,
            width,
            kind=self.adder_kind,
            name=self._fresh_name("add"),
        )
        return _Operand(result, left.signed or right.signed)

    def _sub(self, left: _Operand, right: _Operand) -> _Operand:
        width = self._cap(max(left.width, right.width) + 1)
        bus_a = self._extend(left, width)
        bus_b = self._extend(right, width)
        self.operator_count["sub"] += 1
        result = carry_lookahead_adder(
            self.netlist,
            bus_a.nets,
            self._invert(bus_b),
            width,
            name=self._fresh_name("sub"),
            carry_in=self.netlist.const(1),
        )
        return _Operand(result, True)

    def _mul(self, left: _Operand, right: _Operand) -> _Operand:
        width = self._cap(left.width + right.width)
        self.operator_count["mul"] += 1
        if left.signed or right.signed:
            bus_a = self._extend(left, width)
            bus_b = self._extend(right, width)
            signed = True
        else:
            bus_a, bus_b = left.bus, right.bus
            signed = False
        result = unsigned_multiplier(
            self.netlist,
            bus_a,
            bus_b,
            width,
            style=self.multiplier_style,
            name=self._fresh_name("mul"),
        )
        return _Operand(result, signed)

    def _balanced_sum(self, operands: List[_Operand]) -> _Operand:
        level = list(operands)
        while len(level) > 1:
            next_level: List[_Operand] = []
            for index in range(0, len(level) - 1, 2):
                next_level.append(self._add(level[index], level[index + 1]))
            if len(level) % 2:
                next_level.append(level[-1])
            level = next_level
        return level[0]

    # --------------------------------------------------------------- recurse
    def _flatten_sum(self, node: Expression, sign: int, out: List[Tuple[int, Expression]]) -> None:
        if isinstance(node, Add):
            self._flatten_sum(node.left, sign, out)
            self._flatten_sum(node.right, sign, out)
        elif isinstance(node, Sub):
            self._flatten_sum(node.left, sign, out)
            self._flatten_sum(node.right, -sign, out)
        elif isinstance(node, Neg):
            self._flatten_sum(node.operand, -sign, out)
        else:
            out.append((sign, node))

    def build(self, node: Expression) -> _Operand:
        """Build the netlist for ``node`` and return its word operand."""
        if isinstance(node, Var):
            return _Operand(self.input_buses[node.name], False)
        if isinstance(node, Const):
            if node.value >= 0:
                return _Operand(self._const_bus(node.value, bit_length(node.value)), False)
            return _Operand(
                self._const_bus(node.value % (1 << self.output_width), self.output_width),
                True,
            )
        if isinstance(node, Mul):
            return self._mul(self.build(node.left), self.build(node.right))
        if isinstance(node, (Add, Sub, Neg)):
            if not self.balance:
                if isinstance(node, Add):
                    return self._add(self.build(node.left), self.build(node.right))
                if isinstance(node, Sub):
                    return self._sub(self.build(node.left), self.build(node.right))
                zero = _Operand(self._const_bus(0, 1), False)
                return self._sub(zero, self.build(node.operand))
            terms: List[Tuple[int, Expression]] = []
            self._flatten_sum(node, 1, terms)
            positives = [self.build(expr) for sign, expr in terms if sign > 0]
            negatives = [self.build(expr) for sign, expr in terms if sign < 0]
            if not positives:
                positives = [_Operand(self._const_bus(0, 1), False)]
            positive_sum = self._balanced_sum(positives)
            if not negatives:
                return positive_sum
            negative_sum = self._balanced_sum(negatives)
            return self._sub(positive_sum, negative_sum)
        raise ExpressionError(f"conventional flow cannot handle node {type(node).__name__}")


def conventional_synthesis(
    expression: Expression,
    signals: Mapping[str, SignalSpec],
    output_width: int,
    library: Optional[TechLibrary] = None,
    adder_kind: str = "cla",
    multiplier_style: str = "wallace_cpa",
    balance_operator_trees: bool = True,
    name: str = "conventional",
) -> ConventionalResult:
    """Synthesize ``expression`` with the conventional operator-level flow."""
    if output_width <= 0:
        raise DesignError(f"output width must be positive, got {output_width}")
    netlist = Netlist(name)
    builder = _ConventionalBuilder(
        netlist,
        signals,
        output_width,
        adder_kind=adder_kind,
        multiplier_style=multiplier_style,
        balance_operator_trees=balance_operator_trees,
    )

    for variable in expression.variables():
        if variable not in signals:
            raise DesignError(f"expression uses variable {variable!r} with no SignalSpec")
        spec = signals[variable]
        bus = netlist.add_input_bus(variable, spec.width)
        for index, net in enumerate(bus.nets):
            net.attributes["arrival"] = spec.arrival_of(index)
            net.attributes["probability"] = spec.probability_of(index)
        builder.input_buses[variable] = bus

    result = builder.build(expression)
    output = builder._extend(result, output_width)
    output_bus = Bus("f", output.nets)
    netlist.set_output_bus(output_bus)

    return ConventionalResult(
        netlist=netlist,
        output_bus=output_bus,
        output_width=output_width,
        adder_kind=adder_kind,
        multiplier_style=multiplier_style,
        operator_count=dict(builder.operator_count),
        notes=[],
    )
