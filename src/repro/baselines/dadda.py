"""Dadda-style reduction (arrival-blind, minimal cells per stage).

Dadda's scheme reduces each column only as far as the next element of the
Dadda height sequence (2, 3, 4, 6, 9, 13, 19, ...), which minimises the number
of FAs/HAs at the cost of a slightly taller final adder profile.  Like the
Wallace baseline it ignores arrival times and probabilities; it is included as
a second conventional compressor-tree reference and for the ablation
benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bitmatrix.addend import Addend
from repro.bitmatrix.matrix import AddendMatrix
from repro.core.column import ColumnReduction, allocate_fa, allocate_ha
from repro.core.delay_model import FADelayModel
from repro.core.power_model import FAPowerModel
from repro.core.result import CompressionResult
from repro.core.tree_builder import final_rows_from_matrix
from repro.netlist.core import Netlist


def dadda_height_sequence(limit: int) -> List[int]:
    """The Dadda height sequence 2, 3, 4, 6, 9, ... up to at least ``limit``."""
    sequence = [2]
    while sequence[-1] < limit:
        sequence.append(int(sequence[-1] * 3 / 2))
    return sequence


def dadda_reduce(
    netlist: Netlist,
    matrix: AddendMatrix,
    delay_model: Optional[FADelayModel] = None,
    power_model: Optional[FAPowerModel] = None,
) -> CompressionResult:
    """Reduce the matrix with Dadda's minimal-stage-count scheme."""
    delay_model = delay_model or FADelayModel()
    power_model = power_model or FAPowerModel()
    width = matrix.width

    columns: List[List[Addend]] = [
        sorted(column, key=lambda a: a.sequence) for column in matrix.copy().columns()
    ]
    per_column = [
        ColumnReduction(column=index, remaining=[], carries=[]) for index in range(width)
    ]
    total_energy = 0.0

    max_height = max((len(column) for column in columns), default=0)
    targets = [t for t in reversed(dadda_height_sequence(max(2, max_height))) if t < max_height]
    if not targets or targets[-1] != 2:
        targets = targets + [2] if 2 not in targets else targets

    for target in targets:
        for column_index in range(width):
            column = columns[column_index]
            record = per_column[column_index]
            while len(column) > target:
                if len(column) == target + 1:
                    chosen = column[:2]
                    del column[:2]
                    sum_addend, carry_addend, cell, energy = allocate_ha(
                        netlist, chosen, column_index, delay_model, power_model
                    )
                    record.ha_cells.append(cell)
                else:
                    chosen = column[:3]
                    del column[:3]
                    sum_addend, carry_addend, cell, energy = allocate_fa(
                        netlist, chosen, column_index, delay_model, power_model
                    )
                    record.fa_cells.append(cell)
                record.switching_energy += energy
                total_energy += energy
                column.append(sum_addend)
                if carry_addend.column < width:
                    columns[carry_addend.column].append(carry_addend)

    final = AddendMatrix(width, name=matrix.name)
    for column_index in range(width):
        per_column[column_index].remaining = list(columns[column_index])
        for addend in columns[column_index]:
            final.add(addend)

    rows = final_rows_from_matrix(final, width)
    final_addends = [a for row in rows for a in row if a is not None]
    max_arrival = max((a.arrival for a in final_addends), default=0.0)

    return CompressionResult(
        netlist=netlist,
        width=width,
        rows=rows,
        column_reductions=per_column,
        policy_name="dadda",
        ha_style="dadda_stage",
        tree_switching_energy=total_energy,
        max_final_arrival=max_arrival,
    )
