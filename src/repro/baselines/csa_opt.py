"""Word-level carry-save-adder allocation — the CSA_OPT baseline (ref. [8]).

The authors' earlier ICCAD'99 algorithm allocates 3:2 carry-save adders at the
*word* level: every operand of the flattened addition (a shifted variable, a
multiplier output kept in carry-save form, a constant) is a word with a single
arrival time, and the CSA tree is built by repeatedly combining the three
earliest-arriving words.  This is delay-optimal *given word granularity* — the
limitation the DAC 2000 paper removes by descending to individual bits.

Re-implementation choices (documented in DESIGN.md):

* Words are recovered from the addend matrix through the ``row`` identifiers
  the matrix builder assigns (one row per term and coefficient digit).
* A row that carries more than one bit per column (the partial products of a
  multiplication) is first reduced internally with the classic arrival-blind
  Wallace scheme and contributes its two result rows as two words — i.e. the
  multiplier output enters the word-level CSA tree in carry-save form, exactly
  how CSA-allocation flows chain multipliers.
* Each word-level CSA is a row of FAs/HAs over the union of the three words'
  columns; bits missing from a word are treated as constant 0 (an FA with a
  constant input degenerates to an HA, a lone bit passes through).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bitmatrix.addend import Addend
from repro.bitmatrix.matrix import AddendMatrix
from repro.core.column import ColumnReduction, allocate_fa, allocate_ha
from repro.core.delay_model import FADelayModel
from repro.core.power_model import FAPowerModel
from repro.core.result import CompressionResult
from repro.core.tree_builder import final_rows_from_matrix
from repro.baselines.wallace import wallace_reduce
from repro.errors import AllocationError
from repro.netlist.core import Netlist


class _Word:
    """A word-level operand: at most one addend per column."""

    __slots__ = ("bits",)

    def __init__(self, addends: List[Addend]) -> None:
        self.bits: Dict[int, Addend] = {}
        for addend in addends:
            if addend.column in self.bits:
                raise AllocationError(
                    f"word has two bits in column {addend.column}; reduce it first"
                )
            self.bits[addend.column] = addend

    @property
    def arrival(self) -> float:
        """Word-level arrival time: the latest bit arrival."""
        return max((a.arrival for a in self.bits.values()), default=0.0)

    def columns(self) -> List[int]:
        """Columns at which the word has a bit, ascending."""
        return sorted(self.bits)

    def addends(self) -> List[Addend]:
        """The word's addends in column order."""
        return [self.bits[c] for c in self.columns()]


def _rows_to_words(
    netlist: Netlist,
    matrix: AddendMatrix,
    delay_model: FADelayModel,
    power_model: FAPowerModel,
    per_column: List[ColumnReduction],
) -> List[_Word]:
    """Group matrix addends into word operands, pre-reducing multiplier rows."""
    groups: Dict[int, List[Addend]] = {}
    singles: List[Addend] = []
    for column in matrix.columns():
        for addend in column:
            if addend.row < 0:
                singles.append(addend)
            else:
                groups.setdefault(addend.row, []).append(addend)

    words: List[_Word] = []
    total_energy = 0.0
    for row_id in sorted(groups):
        addends = groups[row_id]
        columns_seen: Dict[int, int] = {}
        for addend in addends:
            columns_seen[addend.column] = columns_seen.get(addend.column, 0) + 1
        if max(columns_seen.values()) == 1:
            words.append(_Word(addends))
            continue
        # Multiplication partial products: reduce internally (arrival-blind
        # Wallace, as a conventional multiplier macro would) and keep the
        # carry-save output as two words.
        sub_matrix = AddendMatrix(matrix.width, name=f"word_row_{row_id}")
        for addend in addends:
            sub_matrix.add(addend)
        reduction = wallace_reduce(netlist, sub_matrix, delay_model, power_model)
        total_energy += reduction.tree_switching_energy
        for column_index, record in enumerate(reduction.column_reductions):
            per_column[column_index].fa_cells.extend(record.fa_cells)
            per_column[column_index].ha_cells.extend(record.ha_cells)
            per_column[column_index].switching_energy += record.switching_energy
        for row in reduction.rows:
            row_addends = [a for a in row if a is not None]
            if row_addends:
                words.append(_Word(row_addends))
    for addend in singles:
        words.append(_Word([addend]))
    return words


def csa_opt_reduce(
    netlist: Netlist,
    matrix: AddendMatrix,
    delay_model: Optional[FADelayModel] = None,
    power_model: Optional[FAPowerModel] = None,
) -> CompressionResult:
    """Reduce the matrix with word-level CSA allocation (the CSA_OPT baseline)."""
    delay_model = delay_model or FADelayModel()
    power_model = power_model or FAPowerModel()
    width = matrix.width
    per_column = [
        ColumnReduction(column=index, remaining=[], carries=[]) for index in range(width)
    ]

    words = _rows_to_words(netlist, matrix, delay_model, power_model, per_column)
    total_energy = sum(record.switching_energy for record in per_column)

    while len(words) > 2:
        words.sort(key=lambda w: (w.arrival, min(w.bits, default=0)))
        first, second, third = words[0], words[1], words[2]
        del words[0:3]

        sum_bits: List[Addend] = []
        carry_bits: List[Addend] = []
        columns = sorted(set(first.bits) | set(second.bits) | set(third.bits))
        for column in columns:
            present = [
                word.bits[column]
                for word in (first, second, third)
                if column in word.bits
            ]
            if len(present) == 3:
                sum_addend, carry_addend, cell, energy = allocate_fa(
                    netlist, present, column, delay_model, power_model
                )
                per_column[column].fa_cells.append(cell)
            elif len(present) == 2:
                sum_addend, carry_addend, cell, energy = allocate_ha(
                    netlist, present, column, delay_model, power_model
                )
                per_column[column].ha_cells.append(cell)
            else:
                sum_bits.append(present[0])
                continue
            per_column[column].switching_energy += energy
            total_energy += energy
            sum_bits.append(sum_addend)
            if carry_addend.column < width:
                carry_bits.append(carry_addend)

        words.append(_Word(sum_bits))
        if carry_bits:
            words.append(_Word(carry_bits))

    final = AddendMatrix(width, name=matrix.name)
    for word in words:
        for addend in word.addends():
            final.add(addend)
    for column_index in range(width):
        per_column[column_index].remaining = list(final.column(column_index))

    rows = final_rows_from_matrix(final, width)
    final_addends = [a for row in rows for a in row if a is not None]
    max_arrival = max((a.arrival for a in final_addends), default=0.0)

    return CompressionResult(
        netlist=netlist,
        width=width,
        rows=rows,
        column_reductions=per_column,
        policy_name="csa_opt",
        ha_style="word_level",
        tree_switching_energy=total_energy,
        max_final_arrival=max_arrival,
    )
