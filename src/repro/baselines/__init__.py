"""Baseline synthesis methods the paper compares against.

* :func:`wallace_reduce` / :func:`dadda_reduce` — classic arrival-blind
  bit-level compressor trees (the way Wallace compression is used inside
  conventional fast multipliers).
* :func:`csa_opt_reduce` — the word-level carry-save-adder allocation of the
  authors' earlier CSA_OPT algorithm (ICCAD'99), re-implemented from its
  published description.
* :func:`conventional_synthesis` — operator-level RTL synthesis: every ``+``,
  ``-`` and ``*`` becomes its own module with a carry-propagate adder at its
  output, arranged in a balanced operator tree.
"""

from repro.baselines.wallace import wallace_reduce
from repro.baselines.dadda import dadda_reduce
from repro.baselines.csa_opt import csa_opt_reduce
from repro.baselines.multipliers import unsigned_multiplier
from repro.baselines.conventional import ConventionalResult, conventional_synthesis

__all__ = [
    "wallace_reduce",
    "dadda_reduce",
    "csa_opt_reduce",
    "unsigned_multiplier",
    "ConventionalResult",
    "conventional_synthesis",
]
