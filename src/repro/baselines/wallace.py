"""Classic Wallace-tree reduction (arrival-blind, stage-based).

This is the scheme the paper identifies as prior art: every reduction stage
looks at each column independently, groups its addends three at a time into
FAs (plus one HA when two are left over in a column that still needs
reduction), and defers all sums/carries to the next stage.  Input selection is
by row order — arrival times and signal probabilities are ignored, which is
exactly what FA_AOT / FA_ALP improve upon.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bitmatrix.addend import Addend
from repro.bitmatrix.matrix import AddendMatrix
from repro.core.column import ColumnReduction, allocate_fa, allocate_ha
from repro.core.delay_model import FADelayModel
from repro.core.power_model import FAPowerModel
from repro.core.result import CompressionResult
from repro.core.tree_builder import final_rows_from_matrix
from repro.netlist.core import Netlist


def wallace_reduce(
    netlist: Netlist,
    matrix: AddendMatrix,
    delay_model: Optional[FADelayModel] = None,
    power_model: Optional[FAPowerModel] = None,
    use_ha: bool = True,
) -> CompressionResult:
    """Reduce the matrix with the classic stage-based Wallace scheme.

    ``use_ha=False`` gives the pure 3:2-only variant (columns with two
    leftovers are simply carried to the next stage), which reduces slightly
    more slowly but with fewer cells.
    """
    delay_model = delay_model or FADelayModel()
    power_model = power_model or FAPowerModel()
    width = matrix.width
    working = matrix.copy()

    per_column = [
        ColumnReduction(column=index, remaining=[], carries=[]) for index in range(width)
    ]
    total_energy = 0.0

    while working.max_height() > 2:
        # Snapshot all columns: everything produced in this stage only becomes
        # available in the next stage (classic Wallace staging).
        snapshot: List[List[Addend]] = [list(column) for column in working.columns()]
        next_columns: List[List[Addend]] = [[] for _ in range(width)]

        for column_index in range(width):
            addends = sorted(snapshot[column_index], key=lambda a: a.sequence)
            record = per_column[column_index]
            index = 0
            height = len(addends)
            while height - index >= 3:
                chosen = addends[index : index + 3]
                index += 3
                sum_addend, carry_addend, cell, energy = allocate_fa(
                    netlist, chosen, column_index, delay_model, power_model
                )
                record.fa_cells.append(cell)
                record.switching_energy += energy
                total_energy += energy
                next_columns[column_index].append(sum_addend)
                if carry_addend.column < width:
                    next_columns[carry_addend.column].append(carry_addend)
            leftovers = addends[index:]
            if use_ha and len(leftovers) == 2 and len(addends) > 2:
                sum_addend, carry_addend, cell, energy = allocate_ha(
                    netlist, leftovers, column_index, delay_model, power_model
                )
                record.ha_cells.append(cell)
                record.switching_energy += energy
                total_energy += energy
                next_columns[column_index].append(sum_addend)
                if carry_addend.column < width:
                    next_columns[carry_addend.column].append(carry_addend)
            else:
                next_columns[column_index].extend(leftovers)

        fresh = AddendMatrix(width, name=working.name)
        for column_index in range(width):
            for addend in next_columns[column_index]:
                fresh.add(addend)
        working = fresh

    for column_index in range(width):
        per_column[column_index].remaining = list(working.column(column_index))

    rows = final_rows_from_matrix(working, width)
    final_addends = [a for row in rows for a in row if a is not None]
    max_arrival = max((a.arrival for a in final_addends), default=0.0)

    return CompressionResult(
        netlist=netlist,
        width=width,
        rows=rows,
        column_reductions=per_column,
        policy_name="wallace",
        ha_style="wallace_stage",
        tree_switching_energy=total_energy,
        max_final_arrival=max_arrival,
    )
