"""Technology library data model.

The library abstraction is intentionally simple — per-cell constant pin-to-pin
delays, a single area number and a per-output energy-per-transition — because
that is the level of detail the DAC 2000 evaluation depends on: the FA delay
parameters ``Ds``/``Dc`` drive the timing algorithm, the FA output energies
``Ws``/``Wc`` drive the power algorithm, and area is a sum of cell areas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import LibraryError
from repro.netlist.cells import CellType, cell_input_ports, cell_output_ports


@dataclass
class CellSpec:
    """Timing/area/power characterization of one cell type.

    Attributes
    ----------
    cell_type:
        The cell this spec describes.
    area:
        Cell area in library units.
    delays:
        Mapping ``(input_port, output_port) -> delay`` in nanoseconds.  A
        missing arc defaults to the worst arc for that output if
        ``default_delay`` is set on the library, otherwise it is an error.
    output_energy:
        Mapping ``output_port -> energy`` consumed per output transition
        (arbitrary but consistent units; the default library uses mW per unit
        switching activity to mirror the paper's reporting).
    """

    cell_type: CellType
    area: float
    delays: Dict[Tuple[str, str], float] = field(default_factory=dict)
    output_energy: Dict[str, float] = field(default_factory=dict)

    def validate(self) -> None:
        """Check that all arcs reference real ports of the cell type."""
        in_ports = set(cell_input_ports(self.cell_type))
        out_ports = set(cell_output_ports(self.cell_type))
        for (src, dst) in self.delays:
            if src not in in_ports or dst not in out_ports:
                raise LibraryError(
                    f"{self.cell_type}: delay arc {src}->{dst} references unknown ports"
                )
        for port in self.output_energy:
            if port not in out_ports:
                raise LibraryError(
                    f"{self.cell_type}: energy for unknown output port {port!r}"
                )


class TechLibrary:
    """A collection of :class:`CellSpec` objects addressed by cell type."""

    def __init__(self, name: str, cells: Mapping[CellType, CellSpec]) -> None:
        self.name = name
        self._cells: Dict[CellType, CellSpec] = dict(cells)
        for spec in self._cells.values():
            spec.validate()

    # ----------------------------------------------------------------- access
    def has_cell(self, cell_type: CellType) -> bool:
        """True when the library characterizes ``cell_type``."""
        return cell_type in self._cells

    def cell_types(self) -> Tuple[CellType, ...]:
        """Every cell type the library characterizes (its cell basis)."""
        return tuple(self._cells)

    def spec(self, cell_type: CellType) -> CellSpec:
        """The :class:`CellSpec` for ``cell_type`` (raises if absent)."""
        try:
            return self._cells[cell_type]
        except KeyError as exc:
            raise LibraryError(
                f"library {self.name!r} has no cell of type {cell_type}"
            ) from exc

    def area(self, cell_type: CellType) -> float:
        """Area of one instance of ``cell_type``."""
        return self.spec(cell_type).area

    def delay(self, cell_type: CellType, input_port: str, output_port: str) -> float:
        """Pin-to-pin delay for the given arc."""
        spec = self.spec(cell_type)
        key = (input_port, output_port)
        if key in spec.delays:
            return spec.delays[key]
        # Fall back to the worst specified arc into this output.
        candidates = [d for (src, dst), d in spec.delays.items() if dst == output_port]
        if candidates:
            return max(candidates)
        raise LibraryError(
            f"library {self.name!r}: no delay arc {input_port}->{output_port} "
            f"for cell {cell_type}"
        )

    def worst_delay(self, cell_type: CellType, output_port: str) -> float:
        """Worst pin-to-pin delay into ``output_port``."""
        spec = self.spec(cell_type)
        candidates = [d for (_, dst), d in spec.delays.items() if dst == output_port]
        if not candidates:
            raise LibraryError(
                f"library {self.name!r}: no delay arcs into {cell_type}.{output_port}"
            )
        return max(candidates)

    def energy(self, cell_type: CellType, output_port: str) -> float:
        """Energy per transition of ``output_port``."""
        spec = self.spec(cell_type)
        if output_port not in spec.output_energy:
            raise LibraryError(
                f"library {self.name!r}: no energy for {cell_type}.{output_port}"
            )
        return spec.output_energy[output_port]

    # -------------------------------------------------- FA model convenience
    def fa_delay_model(self) -> "FADelayParameters":
        """The (Ds, Dc) pair of the FA cell plus the HA equivalents.

        These parameters drive the allocation-time delay bookkeeping of the
        core algorithms; sign-off timing uses the full per-arc library data.
        """
        fa = self.spec(CellType.FA)
        ha = self.spec(CellType.HA) if self.has_cell(CellType.HA) else fa
        return FADelayParameters(
            sum_delay=max(d for (_, dst), d in fa.delays.items() if dst == "s"),
            carry_delay=max(d for (_, dst), d in fa.delays.items() if dst == "co"),
            ha_sum_delay=max(d for (_, dst), d in ha.delays.items() if dst == "s"),
            ha_carry_delay=max(d for (_, dst), d in ha.delays.items() if dst == "co"),
        )

    def fa_power_model(self) -> "FAPowerParameters":
        """The (Ws, Wc) pair of the FA cell plus the HA equivalents."""
        fa = self.spec(CellType.FA)
        ha = self.spec(CellType.HA) if self.has_cell(CellType.HA) else fa
        return FAPowerParameters(
            sum_energy=fa.output_energy["s"],
            carry_energy=fa.output_energy["co"],
            ha_sum_energy=ha.output_energy["s"],
            ha_carry_energy=ha.output_energy["co"],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TechLibrary({self.name!r}, {len(self._cells)} cells)"


@dataclass(frozen=True)
class FADelayParameters:
    """FA/HA input-to-output delays used during allocation (paper's Ds, Dc)."""

    sum_delay: float
    carry_delay: float
    ha_sum_delay: float
    ha_carry_delay: float


@dataclass(frozen=True)
class FAPowerParameters:
    """FA/HA per-transition output energies used during allocation (Ws, Wc)."""

    sum_energy: float
    carry_energy: float
    ha_sum_energy: float
    ha_carry_energy: float
