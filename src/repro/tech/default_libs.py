"""Default technology libraries.

:func:`generic_035` is a stand-in for the LSI Logic ``lcbg10pv`` 0.35 um
library used in the paper.  Absolute values are not reproduced (the databook
is proprietary); the values below were chosen so that

* the FA sum/carry delay ratio (Ds > Dc) and the gate-to-FA delay ratios match
  typical 0.35 um standard cells,
* the FA sum output consumes more switching energy than the carry output
  (Ws > Wc, and ``2*sqrt(Ws) >= sqrt(Wc)`` so Property 1 of the paper applies),
* absolute delays land in the low-nanosecond range and absolute powers in the
  hundreds-of-milliwatt range reported by Tables 1 and 2.

Because every synthesis method is evaluated against the *same* library, the
relative comparisons (the shape of Tables 1 and 2) do not depend on these
absolute choices; the ablation benchmark ``bench_ablation_delay_params``
sweeps the FA parameters to demonstrate that.
"""

from __future__ import annotations

from typing import Dict

from repro.netlist.cells import CellType, cell_input_ports
from repro.tech.library import CellSpec, TechLibrary


def _uniform_delays(cell_type: CellType, output_port: str, delay: float) -> Dict:
    """Build an arc dict giving every input the same delay to one output."""
    return {(port, output_port): delay for port in cell_input_ports(cell_type)}


def generic_035() -> TechLibrary:
    """A generic 0.35 um-like library (stand-in for lcbg10pv)."""
    cells = {
        CellType.FA: CellSpec(
            cell_type=CellType.FA,
            area=28.0,
            delays={
                **_uniform_delays(CellType.FA, "s", 0.42),
                **_uniform_delays(CellType.FA, "co", 0.28),
            },
            output_energy={"s": 0.60, "co": 0.45},
        ),
        CellType.HA: CellSpec(
            cell_type=CellType.HA,
            area=16.0,
            delays={
                **_uniform_delays(CellType.HA, "s", 0.30),
                **_uniform_delays(CellType.HA, "co", 0.18),
            },
            output_energy={"s": 0.35, "co": 0.25},
        ),
        CellType.AND2: CellSpec(
            cell_type=CellType.AND2,
            area=6.0,
            delays=_uniform_delays(CellType.AND2, "y", 0.15),
            output_energy={"y": 0.12},
        ),
        CellType.NAND2: CellSpec(
            cell_type=CellType.NAND2,
            area=4.0,
            delays=_uniform_delays(CellType.NAND2, "y", 0.11),
            output_energy={"y": 0.10},
        ),
        CellType.OR2: CellSpec(
            cell_type=CellType.OR2,
            area=6.0,
            delays=_uniform_delays(CellType.OR2, "y", 0.16),
            output_energy={"y": 0.12},
        ),
        CellType.NOR2: CellSpec(
            cell_type=CellType.NOR2,
            area=4.0,
            delays=_uniform_delays(CellType.NOR2, "y", 0.12),
            output_energy={"y": 0.10},
        ),
        CellType.XOR2: CellSpec(
            cell_type=CellType.XOR2,
            area=10.0,
            delays=_uniform_delays(CellType.XOR2, "y", 0.24),
            output_energy={"y": 0.22},
        ),
        CellType.XNOR2: CellSpec(
            cell_type=CellType.XNOR2,
            area=10.0,
            delays=_uniform_delays(CellType.XNOR2, "y", 0.24),
            output_energy={"y": 0.22},
        ),
        CellType.NOT: CellSpec(
            cell_type=CellType.NOT,
            area=2.0,
            delays=_uniform_delays(CellType.NOT, "y", 0.06),
            output_energy={"y": 0.05},
        ),
        CellType.BUF: CellSpec(
            cell_type=CellType.BUF,
            area=3.0,
            delays=_uniform_delays(CellType.BUF, "y", 0.09),
            output_energy={"y": 0.06},
        ),
        CellType.MUX2: CellSpec(
            cell_type=CellType.MUX2,
            area=8.0,
            delays=_uniform_delays(CellType.MUX2, "y", 0.20),
            output_energy={"y": 0.18},
        ),
        CellType.AOI21: CellSpec(
            cell_type=CellType.AOI21,
            area=5.0,
            delays=_uniform_delays(CellType.AOI21, "y", 0.14),
            output_energy={"y": 0.11},
        ),
        CellType.OAI21: CellSpec(
            cell_type=CellType.OAI21,
            area=5.0,
            delays=_uniform_delays(CellType.OAI21, "y", 0.15),
            output_energy={"y": 0.11},
        ),
        CellType.AOI22: CellSpec(
            cell_type=CellType.AOI22,
            area=7.0,
            delays=_uniform_delays(CellType.AOI22, "y", 0.17),
            output_energy={"y": 0.14},
        ),
        CellType.XOR3: CellSpec(
            cell_type=CellType.XOR3,
            area=16.0,
            delays=_uniform_delays(CellType.XOR3, "y", 0.36),
            output_energy={"y": 0.34},
        ),
        CellType.MAJ3: CellSpec(
            cell_type=CellType.MAJ3,
            area=11.0,
            delays=_uniform_delays(CellType.MAJ3, "y", 0.22),
            output_energy={"y": 0.20},
        ),
    }
    return TechLibrary("generic_035", cells)


def unit_library() -> TechLibrary:
    """Unit delays/areas/energies for algorithm-level tests and examples.

    FA delays are Ds=2, Dc=1 and HA delays are Ds=2, Dc=1, matching the values
    used in the motivating example of Figure 2 of the paper; all other cells
    have delay 1, area 1, energy 1.  FA output energies are Ws=Wc=1, matching
    Figure 4.
    """
    cells: Dict[CellType, CellSpec] = {}
    for cell_type in CellType:
        if cell_type is CellType.FA:
            spec = CellSpec(
                cell_type=cell_type,
                area=1.0,
                delays={
                    **_uniform_delays(cell_type, "s", 2.0),
                    **_uniform_delays(cell_type, "co", 1.0),
                },
                output_energy={"s": 1.0, "co": 1.0},
            )
        elif cell_type is CellType.HA:
            spec = CellSpec(
                cell_type=cell_type,
                area=1.0,
                delays={
                    **_uniform_delays(cell_type, "s", 2.0),
                    **_uniform_delays(cell_type, "co", 1.0),
                },
                output_energy={"s": 1.0, "co": 1.0},
            )
        else:
            output_port = "y"
            spec = CellSpec(
                cell_type=cell_type,
                area=1.0,
                delays=_uniform_delays(cell_type, output_port, 1.0),
                output_energy={output_port: 1.0},
            )
        cells[cell_type] = spec
    return TechLibrary("unit", cells)


def scaled_library(
    fa_sum_delay: float,
    fa_carry_delay: float,
    base: TechLibrary = None,
    name: str = None,
) -> TechLibrary:
    """Clone a library with overridden FA sum/carry delays.

    Used by the Ds/Dc-sensitivity ablation benchmark.  Only the FA cell's arcs
    are changed; everything else is shared with ``base`` (default
    :func:`generic_035`).
    """
    base = base or generic_035()
    cells = {}
    for cell_type in CellType:
        if not base.has_cell(cell_type):
            continue
        spec = base.spec(cell_type)
        if cell_type is CellType.FA:
            spec = CellSpec(
                cell_type=CellType.FA,
                area=spec.area,
                delays={
                    **_uniform_delays(CellType.FA, "s", fa_sum_delay),
                    **_uniform_delays(CellType.FA, "co", fa_carry_delay),
                },
                output_energy=dict(spec.output_energy),
            )
        cells[cell_type] = spec
    label = name or f"{base.name}_fa_{fa_sum_delay:g}_{fa_carry_delay:g}"
    return TechLibrary(label, cells)


#: names accepted by :func:`resolve_library` (the CLI / sweep library axis)
LIBRARY_NAMES = ("generic_035", "unit")


def resolve_library(name: str) -> TechLibrary:
    """Build a default library from its registry name.

    Used by the CLI and the exploration engine so that a sweep point can
    reference a library by name (names are picklable and hashable, library
    objects are rebuilt inside worker processes).
    """
    if name == "generic_035":
        return generic_035()
    if name == "unit":
        return unit_library()
    from repro.errors import LibraryError

    raise LibraryError(
        f"unknown library {name!r} (choices: {', '.join(LIBRARY_NAMES)})"
    )
