"""Technology library models.

A :class:`TechLibrary` provides, per cell type: pin-to-pin delays, cell area
and per-output switching energy.  The default :func:`generic_035` library
plays the role of the LSI Logic ``lcbg10pv`` 0.35 um library used in the
paper; :func:`unit_library` provides unit delays/areas/energies for
algorithm-level reasoning and tests.
"""

from repro.tech.library import CellSpec, TechLibrary
from repro.tech.default_libs import (
    LIBRARY_NAMES,
    generic_035,
    resolve_library,
    scaled_library,
    unit_library,
)
from repro.tech.target_libs import (
    TARGET_LIBRARY_NAMES,
    aoi_rich,
    lowpower_035,
    nand2_basis,
    resolve_target_library,
)

__all__ = [
    "CellSpec",
    "TechLibrary",
    "LIBRARY_NAMES",
    "generic_035",
    "resolve_library",
    "unit_library",
    "scaled_library",
    "TARGET_LIBRARY_NAMES",
    "nand2_basis",
    "aoi_rich",
    "lowpower_035",
    "resolve_target_library",
]
