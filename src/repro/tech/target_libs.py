"""Technology-mapping target libraries.

Each library here defines a *cell basis*: the set of cell types a mapped
netlist is allowed to contain (``TechLibrary.cell_types()``), plus the
area/delay/energy characterization the post-mapping analyses run against.
Unlike :func:`repro.tech.default_libs.generic_035` — which characterizes the
flow's idealized FA/HA/gate primitives — none of these libraries contains an
FA or HA macro: the whole point of mapping is to lower the compressor tree
onto concrete standard cells.

Three bases ship by default, chosen to stress different corners of the
mapper's objective function:

``nand2_basis``
    The minimal universal basis — NAND2 + inverter (+ buffer).  Everything
    decomposes into long NAND chains, so delay-objective mapping has real
    work to do.
``aoi_rich``
    A rich ASIC-style basis with complex cells (AOI21/OAI21/AOI22), full
    XOR/XNOR, a 3-input XOR and a majority gate, so a full adder maps to as
    little as two cells.
``lowpower_035``
    Non-inverting simple gates with deliberately low per-transition
    energies and slightly slower arcs — the basis a power-driven flow would
    target.

Values follow the same conventions as ``generic_035`` (delays in
nanoseconds, areas in library units, energies per output transition).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import LibraryError
from repro.netlist.cells import CellType
from repro.tech.default_libs import _uniform_delays
from repro.tech.library import CellSpec, TechLibrary


def _spec(
    cell_type: CellType, area: float, delay: float, energy: float
) -> CellSpec:
    """Single-output cell spec with uniform input arcs (all bases use these)."""
    return CellSpec(
        cell_type=cell_type,
        area=area,
        delays=_uniform_delays(cell_type, "y", delay),
        output_energy={"y": energy},
    )


def nand2_basis() -> TechLibrary:
    """The minimal universal basis: NAND2, inverter, buffer."""
    return TechLibrary(
        "nand2_basis",
        {
            CellType.NAND2: _spec(CellType.NAND2, 4.0, 0.11, 0.10),
            CellType.NOT: _spec(CellType.NOT, 2.0, 0.06, 0.05),
            CellType.BUF: _spec(CellType.BUF, 3.0, 0.09, 0.06),
        },
    )


def aoi_rich() -> TechLibrary:
    """An ASIC-style basis rich in complex cells (AOI/OAI/XOR3/MAJ3)."""
    return TechLibrary(
        "aoi_rich",
        {
            CellType.NAND2: _spec(CellType.NAND2, 4.0, 0.11, 0.10),
            CellType.NOR2: _spec(CellType.NOR2, 4.0, 0.12, 0.10),
            CellType.NOT: _spec(CellType.NOT, 2.0, 0.06, 0.05),
            CellType.BUF: _spec(CellType.BUF, 3.0, 0.09, 0.06),
            CellType.XOR2: _spec(CellType.XOR2, 10.0, 0.24, 0.22),
            CellType.XNOR2: _spec(CellType.XNOR2, 10.0, 0.24, 0.22),
            CellType.MUX2: _spec(CellType.MUX2, 8.0, 0.20, 0.18),
            CellType.AOI21: _spec(CellType.AOI21, 5.0, 0.14, 0.11),
            CellType.OAI21: _spec(CellType.OAI21, 5.0, 0.15, 0.11),
            CellType.AOI22: _spec(CellType.AOI22, 7.0, 0.17, 0.14),
            CellType.XOR3: _spec(CellType.XOR3, 16.0, 0.36, 0.34),
            CellType.MAJ3: _spec(CellType.MAJ3, 11.0, 0.22, 0.20),
        },
    )


def lowpower_035() -> TechLibrary:
    """Non-inverting simple gates with low switching energy, slower arcs."""
    return TechLibrary(
        "lowpower_035",
        {
            CellType.AND2: _spec(CellType.AND2, 6.0, 0.19, 0.08),
            CellType.OR2: _spec(CellType.OR2, 6.0, 0.20, 0.08),
            CellType.XOR2: _spec(CellType.XOR2, 10.0, 0.30, 0.15),
            CellType.XNOR2: _spec(CellType.XNOR2, 10.0, 0.30, 0.15),
            CellType.NOT: _spec(CellType.NOT, 2.0, 0.08, 0.03),
            CellType.BUF: _spec(CellType.BUF, 3.0, 0.11, 0.04),
            CellType.MUX2: _spec(CellType.MUX2, 8.0, 0.26, 0.12),
        },
    )


#: builders of every shipped target library, keyed by name
_TARGET_BUILDERS: Dict[str, object] = {
    "nand2_basis": nand2_basis,
    "aoi_rich": aoi_rich,
    "lowpower_035": lowpower_035,
}

#: names accepted by :func:`resolve_target_library` (the mapping basis axis,
#: excluding the identity target ``"generic"`` which maps nothing)
TARGET_LIBRARY_NAMES: Tuple[str, ...] = tuple(_TARGET_BUILDERS)


def resolve_target_library(name: str) -> TechLibrary:
    """Build a target library from its registry name.

    Like :func:`repro.tech.default_libs.resolve_library`, names (not library
    objects) travel through configs, sweep points and worker processes; the
    object is rebuilt where it is needed.
    """
    try:
        builder = _TARGET_BUILDERS[name]
    except KeyError:
        raise LibraryError(
            f"unknown target library {name!r} "
            f"(choices: {', '.join(TARGET_LIBRARY_NAMES)})"
        )
    return builder()
