"""The technology-mapping engine: greedy covering over the template library.

:class:`TechnologyMappingPass` is a :class:`repro.opt.base.RewritePass` (so
the whole run rides the :class:`repro.opt.manager.PassManager`'s fixpoint /
validation / equivalence machinery).  One invocation sweeps the netlist in
topological order and *covers* every cell whose type is outside the target
basis with the best-scoring applicable template:

* fanin cells are covered before their readers, so the pass maintains exact
  arrival-time estimates (target-library arcs) for every net it has passed —
  the delay objective scores a candidate template on the real arrivals of
  the nets it will consume, not on unit depths;
* candidates are the registered templates for the cell's type whose gates
  all belong to the basis; a type with no applicable template is a
  :class:`repro.errors.MappingError` (the basis is not universal enough);
* scoring follows the objective: ``area`` minimizes summed cell area (ties
  broken by arrival), ``delay`` minimizes the worst output arrival (ties
  broken by area), ``balanced`` minimizes the sum of both, each normalized
  by the best candidate; all three fall back to the template name as the
  final deterministic tie-break.

:func:`map_netlist` is the front door used by the flow stage and the CLI:
it assembles the pass pipeline (mapping, then BUF/NOT cleanup and dead-cell
elimination to sweep the template seams), runs it equivalence-checked
against the pre-mapping netlist, asserts the basis post-condition and
returns a :class:`~repro.map.report.MapReport`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import MappingError
from repro.map.report import MapReport
from repro.map.targets import (
    GENERIC_TARGET,
    MAP_OBJECTIVES,
    basis_of,
    resolve_target_library,
)
from repro.map.templates import (
    MapTemplate,
    materialize_template,
    template_area,
    template_arrivals,
    templates_for,
)
from repro.netlist.cells import cell_input_ports, cell_output_ports
from repro.netlist.core import Net, Netlist
from repro.netlist.stats import netlist_stats
from repro.opt.base import RewritePass, retire_cell
from repro.opt.cleanup import CleanupPass
from repro.opt.dce import DeadCellEliminationPass
from repro.opt.manager import PassManager
from repro.tech.library import TechLibrary
from repro.timing.arrival import compute_arrival_times


class TechnologyMappingPass(RewritePass):
    """Cover every out-of-basis cell with its best applicable template."""

    name = "tech-map"

    def __init__(self, library: TechLibrary, objective: str = "balanced") -> None:
        super().__init__()
        if objective not in MAP_OBJECTIVES:
            raise MappingError(
                f"unknown map objective {objective!r}; "
                f"expected one of {MAP_OBJECTIVES}"
            )
        self.library = library
        self.objective = objective
        self.basis = basis_of(library)
        #: template name -> number of applications (accumulated across runs)
        self.template_counts: Dict[str, int] = {}
        #: per cell type: the applicable (template, area) pairs — candidates
        #: and areas depend only on (cell type, library), so they are
        #: computed once here instead of once per covered cell
        self._candidate_cache: Dict[object, List[Tuple[MapTemplate, float]]] = {}
        #: (cell type, per-port input-arrival tuple) -> (winner, out arrivals);
        #: scoring is a pure function of that key for a fixed library and
        #: objective, and compressor trees present the same few arrival
        #: profiles over and over, so most covers are cache hits
        self._score_cache: Dict[
            Tuple, Tuple[MapTemplate, Dict[str, float]]
        ] = {}

    # ------------------------------------------------------------- selection

    def _candidates(self, cell_type) -> List[Tuple[MapTemplate, float]]:
        if cell_type not in self._candidate_cache:
            self._candidate_cache[cell_type] = [
                (template, template_area(template, self.library))
                for template in templates_for(cell_type)
                if template.gates() <= self.basis
            ]
        candidates = self._candidate_cache[cell_type]
        if not candidates:
            raise MappingError(
                f"no template maps {cell_type} into the "
                f"{self.library.name!r} basis "
                f"({', '.join(sorted(ct.value for ct in self.basis))})"
            )
        return candidates

    def _choose(
        self,
        candidates: List[Tuple[MapTemplate, float]],
        input_arrivals: Dict[str, float],
    ) -> Tuple[MapTemplate, Dict[str, float]]:
        """Score every candidate and return (winner, its output arrivals)."""
        scored = []
        for template, area in candidates:
            arrivals = template_arrivals(template, self.library, input_arrivals)
            worst = max(arrivals.values())
            scored.append((template, area, worst, arrivals))
        if self.objective == "area":
            key = lambda entry: (entry[1], entry[2], entry[0].name)  # noqa: E731
        elif self.objective == "delay":
            key = lambda entry: (entry[2], entry[1], entry[0].name)  # noqa: E731
        else:  # balanced
            min_area = min(entry[1] for entry in scored)
            min_delay = min(entry[2] for entry in scored)
            key = lambda entry: (  # noqa: E731
                entry[1] / min_area + entry[2] / min_delay,
                entry[0].name,
            )
        template, _, _, arrivals = min(scored, key=key)
        return template, arrivals

    # ------------------------------------------------------------- the sweep

    def _input_arrival(self, net: Net, arrivals: Dict[str, float]) -> float:
        if net.name in arrivals:
            return arrivals[net.name]
        # primary inputs and constants: the matrix builder's arrival
        # annotation when present, otherwise time zero
        return float(net.attributes.get("arrival", 0.0))

    def run(self, netlist: Netlist) -> int:
        with obs.span(
            "map.cover",
            library=self.library.name,
            objective=self.objective,
            cells=netlist.num_cells(),
        ) as cover_span:
            changed = self._cover(netlist)
            cover_span.set(covered=changed)
        return changed

    def _cover(self, netlist: Netlist) -> int:
        changed = 0
        self.touched_nets = set()
        # per-net arrival estimates accumulated along the sweep; only the
        # nets downstream cells can read need an entry (replacement nets,
        # kept-cell outputs) — template-internal nets and retired
        # primary-output nets are never consumed by later sweep steps
        arrivals: Dict[str, float] = {}
        for cell in netlist.topological_cells():
            in_ports = cell_input_ports(cell.cell_type)
            input_arrivals = {
                port: self._input_arrival(cell.inputs[port], arrivals)
                for port in in_ports
            }
            if cell.cell_type in self.basis:
                # kept cell: extend the arrival estimates and move on
                for out_port in cell_output_ports(cell.cell_type):
                    arrivals[cell.outputs[out_port].name] = max(
                        input_arrivals[port]
                        + self.library.delay(cell.cell_type, port, out_port)
                        for port in in_ports
                    )
                continue
            score_key = (
                cell.cell_type,
                tuple(input_arrivals[port] for port in in_ports),
            )
            cached = self._score_cache.get(score_key)
            if cached is None:
                candidates = self._candidates(cell.cell_type)
                cached = self._choose(candidates, input_arrivals)
                self._score_cache[score_key] = cached
                obs.counter("map.candidates_evaluated", len(candidates))
            else:
                obs.counter("map.score_cache_hits")
            template, out_arrivals = cached
            obs.counter("map.cells_covered")
            replacements = materialize_template(netlist, template, cell)
            for port, net in replacements.items():
                arrivals[net.name] = out_arrivals[port]
            self.touched_nets |= retire_cell(netlist, cell, replacements)
            self.template_counts[template.name] = (
                self.template_counts.get(template.name, 0) + 1
            )
            changed += 1
        return changed


def map_netlist(
    netlist: Netlist,
    target: str,
    objective: str = "balanced",
    source_library: Optional[TechLibrary] = None,
    validate: bool = False,
    check_equivalence: bool = True,
    max_iterations: int = 8,
) -> MapReport:
    """Rewrite ``netlist`` in place onto the ``target`` cell basis.

    Parameters
    ----------
    target:
        A target-library name from :data:`repro.map.targets.TARGET_NAMES`
        (``"generic"`` is rejected here — the caller skips mapping instead).
    objective:
        ``"area"`` | ``"delay"`` | ``"balanced"`` template selection.
    source_library:
        The library the netlist was built against; used for the pre-mapping
        area/delay baseline in the report (defaults to ``generic_035``).
    validate:
        Debug mode: structurally validate after every pass invocation.
    check_equivalence:
        Verify the mapped netlist against a pre-mapping snapshot on every
        primary output (bit-parallel, exhaustive for small designs).

    Returns the :class:`~repro.map.report.MapReport`.  Raises
    :class:`MappingError` when the mapped netlist still contains
    out-of-basis cells (an internal invariant violation) or when the basis
    cannot express a needed cell type.
    """
    if target == GENERIC_TARGET:
        raise MappingError(
            "target 'generic' keeps the netlist unmapped; call map_netlist "
            "only for a concrete target library"
        )
    start = time.perf_counter()
    with obs.span("map.netlist", target=target, objective=objective):
        if source_library is None:
            from repro.tech.default_libs import generic_035

            source_library = generic_035()
        library = resolve_target_library(target)
        before = netlist_stats(netlist, source_library)
        delay_before = compute_arrival_times(netlist, source_library).delay

        mapping_pass = TechnologyMappingPass(library, objective=objective)
        manager = PassManager(
            [mapping_pass, CleanupPass(), DeadCellEliminationPass()],
            max_iterations=max_iterations,
            validate=validate,
            check_equivalence=check_equivalence,
            # no library for the manager's own stats: its "before" netlist
            # mixes generic and basis cells, which no single library prices —
            # the report's before/after stats are computed against the right
            # library on either side of the run instead
            library=None,
            opt_level=0,
        )
        opt_report = manager.run(netlist)

        stray = sorted(
            {
                cell.cell_type.value
                for cell in netlist.cells.values()
                if cell.cell_type not in mapping_pass.basis
            }
        )
        if stray:
            raise MappingError(
                f"mapping to {target!r} left out-of-basis cell type(s): {stray}"
            )

        after = netlist_stats(netlist, library)
        delay_after = compute_arrival_times(netlist, library).delay
    return MapReport(
        target_lib=target,
        objective=objective,
        library=library,
        template_counts=dict(mapping_pass.template_counts),
        before=before,
        after=after,
        delay_before=delay_before,
        delay_after=delay_after,
        opt_report=opt_report,
        elapsed_s=time.perf_counter() - start,
    )
