"""Technology mapping: rewrite generic netlists onto concrete cell bases.

The flow's synthesis stages build netlists from idealized primitives (FA,
HA, two-input gates).  This subsystem lowers such a netlist onto one of the
*target libraries* shipped in :mod:`repro.tech.target_libs` — a concrete
standard-cell basis with its own areas, arcs and energies — under an
``area`` / ``delay`` / ``balanced`` objective:

>>> from repro.map import map_netlist
>>> report = map_netlist(netlist, target="nand2_basis", objective="delay")

Inside the staged flow this runs as the ``map`` stage (between ``optimize``
and ``analyze``) whenever ``FlowConfig.target_lib`` names a concrete basis;
all downstream analyses (timing, power, stats) then run against the target
library, and the :class:`MapReport` lands in the flow artifacts.

See :mod:`repro.map.templates` for the equivalence-checked decomposition
templates and :mod:`repro.map.mapper` for the covering pass.
"""

from repro.map.mapper import TechnologyMappingPass, map_netlist
from repro.map.report import MapReport
from repro.map.targets import (
    GENERIC_TARGET,
    MAP_OBJECTIVES,
    TARGET_NAMES,
    basis_of,
    resolve_target_library,
)
from repro.map.templates import (
    MapTemplate,
    TemplateNode,
    register_template,
    templates_for,
    verify_template,
)

__all__ = [
    "GENERIC_TARGET",
    "MAP_OBJECTIVES",
    "TARGET_NAMES",
    "MapReport",
    "MapTemplate",
    "TemplateNode",
    "TechnologyMappingPass",
    "basis_of",
    "map_netlist",
    "register_template",
    "resolve_target_library",
    "templates_for",
    "verify_template",
]
