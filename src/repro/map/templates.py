"""Rewrite templates: per-cell decompositions into target-basis gates.

A :class:`MapTemplate` describes one way to implement a source cell type as
a small DAG of single-output basis gates.  Templates are *declarative*: the
same node list drives

* the equivalence self-check (:func:`verify_template` evaluates the template
  DAG against :func:`repro.netlist.cells.evaluate_cell` over every input
  combination — a template that does not compute its source cell's exact
  function can never be applied);
* cost estimation (:func:`template_area` / :func:`template_arrivals` walk
  the node list against a target library's areas and pin-to-pin arcs);
* materialization (:func:`materialize_template` instantiates the nodes as
  real cells in a netlist).

Node inputs are *refs*: an input port name of the source cell (``"a"``,
``"cin"``, ...), the id of an earlier node, or a constant ``"0"`` / ``"1"``.
Several templates may target the same source cell type — the covering pass
(:mod:`repro.map.mapper`) chooses among the ones whose gates fit the target
basis, under the configured objective.

The registry is open: :func:`register_template` adds alternatives, and a
new basis only needs templates for the source types it does not contain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.errors import MappingError
from repro.netlist.cells import (
    CellType,
    cell_input_ports,
    cell_output_ports,
    evaluate_cell,
)
from repro.netlist.core import Cell, Net, Netlist
from repro.tech.library import TechLibrary


@dataclass(frozen=True)
class TemplateNode:
    """One basis gate inside a template DAG.

    ``ins`` are refs bound positionally to the gate's input ports
    (:func:`cell_input_ports` order).
    """

    node: str
    gate: CellType
    ins: Tuple[str, ...]


@dataclass(frozen=True)
class MapTemplate:
    """A named decomposition of one source cell type into basis gates.

    ``outputs`` maps every output port of the source cell to the ref that
    carries its value (almost always a node id).  Nodes must be listed in
    topological order (a node may only reference earlier nodes).
    """

    name: str
    source: CellType
    nodes: Tuple[TemplateNode, ...]
    outputs: Mapping[str, str]

    def gates(self) -> FrozenSet[CellType]:
        """The gate types the template instantiates."""
        return frozenset(node.gate for node in self.nodes)

    def num_cells(self) -> int:
        """Number of cells the template materializes."""
        return len(self.nodes)


def _check_structure(template: MapTemplate) -> None:
    """Structural sanity: ref resolution, port arity, output coverage."""
    in_ports = set(cell_input_ports(template.source))
    known = set(in_ports) | {"0", "1"}
    for node in template.nodes:
        if node.node in known or node.node in in_ports:
            raise MappingError(
                f"template {template.name!r}: duplicate node id {node.node!r}"
            )
        expected = len(cell_input_ports(node.gate))
        if len(node.ins) != expected:
            raise MappingError(
                f"template {template.name!r}: node {node.node!r} binds "
                f"{len(node.ins)} inputs, {node.gate} has {expected}"
            )
        if len(cell_output_ports(node.gate)) != 1:
            raise MappingError(
                f"template {template.name!r}: node {node.node!r} uses "
                f"multi-output gate {node.gate} (templates are single-output DAGs)"
            )
        for ref in node.ins:
            if ref not in known:
                raise MappingError(
                    f"template {template.name!r}: node {node.node!r} references "
                    f"unknown ref {ref!r} (nodes must be topologically ordered)"
                )
        known.add(node.node)
    missing = [p for p in cell_output_ports(template.source) if p not in template.outputs]
    if missing:
        raise MappingError(
            f"template {template.name!r}: no ref for output port(s) {missing}"
        )
    for port, ref in template.outputs.items():
        if ref not in known:
            raise MappingError(
                f"template {template.name!r}: output {port!r} references "
                f"unknown ref {ref!r}"
            )


def _evaluate_template(
    template: MapTemplate, assignment: Mapping[str, int]
) -> Dict[str, int]:
    """Evaluate the template DAG on one 0/1 input assignment."""
    values: Dict[str, int] = {"0": 0, "1": 1}
    values.update(assignment)
    for node in template.nodes:
        ports = cell_input_ports(node.gate)
        node_inputs = {port: values[ref] for port, ref in zip(ports, node.ins)}
        values[node.node] = evaluate_cell(node.gate, node_inputs)["y"]
    return {port: values[ref] for port, ref in template.outputs.items()}


def _memo_key(template: MapTemplate) -> Tuple:
    """Full structural identity of a template (not just its name)."""
    return (
        template.name,
        template.source,
        template.nodes,
        tuple(sorted(template.outputs.items())),
    )


#: structural keys of templates that already passed :func:`verify_template`
#: this process — keyed by content, so a same-named but different template
#: can never ride an earlier template's proof
_VERIFIED: set = set()


def verify_template(template: MapTemplate) -> None:
    """Prove the template computes its source cell's function, exhaustively.

    Source cells have at most four inputs, so the proof is a 16-row truth
    table at worst.  Raises :class:`MappingError` on any structural problem
    or functional mismatch; verified templates are remembered so the check
    runs once per process, not once per application.
    """
    if _memo_key(template) in _VERIFIED:
        return
    _check_structure(template)
    ports = cell_input_ports(template.source)
    for bits in itertools.product((0, 1), repeat=len(ports)):
        assignment = dict(zip(ports, bits))
        expected = evaluate_cell(template.source, assignment)
        produced = _evaluate_template(template, assignment)
        if produced != expected:
            raise MappingError(
                f"template {template.name!r} is not equivalent to "
                f"{template.source} on inputs {assignment}: "
                f"expected {expected}, produced {produced}"
            )
    _VERIFIED.add(_memo_key(template))


# ---------------------------------------------------------------- cost model


def template_area(template: MapTemplate, library: TechLibrary) -> float:
    """Summed cell area of the template under ``library``."""
    return sum(library.area(node.gate) for node in template.nodes)


def template_arrivals(
    template: MapTemplate,
    library: TechLibrary,
    input_arrivals: Mapping[str, float],
) -> Dict[str, float]:
    """Estimated arrival time of each source output port.

    ``input_arrivals`` maps the source cell's input port names to the
    arrival times of the nets bound to them; node arrivals follow the
    library's per-arc pin-to-pin delays.
    """
    arrivals: Dict[str, float] = {"0": 0.0, "1": 0.0}
    arrivals.update(input_arrivals)
    for node in template.nodes:
        ports = cell_input_ports(node.gate)
        arrivals[node.node] = max(
            arrivals[ref] + library.delay(node.gate, port, "y")
            for port, ref in zip(ports, node.ins)
        )
    return {port: arrivals[ref] for port, ref in template.outputs.items()}


# ------------------------------------------------------------ materialization


def materialize_template(
    netlist: Netlist, template: MapTemplate, cell: Cell
) -> Dict[str, Net]:
    """Instantiate the template next to ``cell`` and return its output nets.

    The caller retires ``cell`` afterwards (``repro.opt.base.retire_cell``),
    rerouting its readers onto the returned nets.  The template is
    :func:`verify_template`-checked before anything is built.
    """
    verify_template(template)
    nets: Dict[str, Net] = {"0": netlist.const(0), "1": netlist.const(1)}
    for port in cell_input_ports(template.source):
        nets[port] = cell.inputs[port]
    for node in template.nodes:
        ports = cell_input_ports(node.gate)
        bindings = {port: nets[ref] for port, ref in zip(ports, node.ins)}
        nets[node.node] = netlist.add_cell(node.gate, bindings).outputs["y"]
    return {port: nets[ref] for port, ref in template.outputs.items()}


# -------------------------------------------------------------- the registry

TEMPLATES: Dict[CellType, List[MapTemplate]] = {}
_NAMES: Dict[str, MapTemplate] = {}


def register_template(template: MapTemplate) -> MapTemplate:
    """Add a template to the registry.

    Registration is the trust boundary: the template is structurally checked
    and exhaustively proved equivalent to its source cell *here*, and names
    must be unique — a rejected template never becomes selectable, and the
    per-template application counts in :class:`~repro.map.report.MapReport`
    stay unambiguous.
    """
    if template.name in _NAMES:
        raise MappingError(
            f"a template named {template.name!r} is already registered "
            f"(for {_NAMES[template.name].source}); template names are unique"
        )
    verify_template(template)
    _NAMES[template.name] = template
    TEMPLATES.setdefault(template.source, []).append(template)
    return template


def templates_for(source: CellType) -> Tuple[MapTemplate, ...]:
    """All registered templates for one source cell type."""
    return tuple(TEMPLATES.get(source, ()))


def _t(name: str, source: CellType, outputs: Mapping[str, str], *nodes) -> MapTemplate:
    """Compact constructor used by the built-in template definitions below."""
    return register_template(
        MapTemplate(
            name=name,
            source=source,
            nodes=tuple(TemplateNode(n, g, tuple(ins)) for n, g, ins in nodes),
            outputs=dict(outputs),
        )
    )


# --- full adder --------------------------------------------------------------

#: two complex cells: the canonical rich-basis full adder
_t(
    "fa.xor3_maj3",
    CellType.FA,
    {"s": "s", "co": "co"},
    ("s", CellType.XOR3, ("a", "b", "cin")),
    ("co", CellType.MAJ3, ("a", "b", "cin")),
)

#: the classic 9-NAND full adder (carry shares the XOR-internal nodes)
_t(
    "fa.nand9",
    CellType.FA,
    {"s": "s", "co": "co"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("n2", CellType.NAND2, ("a", "n1")),
    ("n3", CellType.NAND2, ("b", "n1")),
    ("x1", CellType.NAND2, ("n2", "n3")),
    ("m1", CellType.NAND2, ("x1", "cin")),
    ("m2", CellType.NAND2, ("x1", "m1")),
    ("m3", CellType.NAND2, ("cin", "m1")),
    ("s", CellType.NAND2, ("m2", "m3")),
    ("co", CellType.NAND2, ("m1", "n1")),
)

#: NAND-basis delay alternative: the carry is a parallel 2-level majority
#: instead of riding the sum's XOR chain (larger, but a shorter co path)
_t(
    "fa.nand13",
    CellType.FA,
    {"s": "s", "co": "co"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("n2", CellType.NAND2, ("a", "n1")),
    ("n3", CellType.NAND2, ("b", "n1")),
    ("x1", CellType.NAND2, ("n2", "n3")),
    ("m1", CellType.NAND2, ("x1", "cin")),
    ("m2", CellType.NAND2, ("x1", "m1")),
    ("m3", CellType.NAND2, ("cin", "m1")),
    ("s", CellType.NAND2, ("m2", "m3")),
    ("nac", CellType.NAND2, ("a", "cin")),
    ("nbc", CellType.NAND2, ("b", "cin")),
    ("t", CellType.NAND2, ("n1", "nac")),
    ("tn", CellType.NOT, ("t",)),
    ("co", CellType.NAND2, ("tn", "nbc")),
)

#: AND/OR/XOR basis, area-lean: the carry reuses the a^b node
_t(
    "fa.shared_xor",
    CellType.FA,
    {"s": "s", "co": "co"},
    ("x1", CellType.XOR2, ("a", "b")),
    ("s", CellType.XOR2, ("x1", "cin")),
    ("p", CellType.AND2, ("a", "b")),
    ("q", CellType.AND2, ("x1", "cin")),
    ("co", CellType.OR2, ("p", "q")),
)

#: AND/OR/XOR basis, delay-lean: the carry is the expanded 2-level majority
_t(
    "fa.parallel_maj",
    CellType.FA,
    {"s": "s", "co": "co"},
    ("x1", CellType.XOR2, ("a", "b")),
    ("s", CellType.XOR2, ("x1", "cin")),
    ("p", CellType.AND2, ("a", "b")),
    ("q", CellType.AND2, ("a", "cin")),
    ("r", CellType.AND2, ("b", "cin")),
    ("o1", CellType.OR2, ("p", "q")),
    ("co", CellType.OR2, ("o1", "r")),
)

#: rich basis alternative: carry through one AOI22 complex cell
_t(
    "fa.aoi_shared",
    CellType.FA,
    {"s": "s", "co": "co"},
    ("x1", CellType.XOR2, ("a", "b")),
    ("s", CellType.XOR2, ("x1", "cin")),
    ("ao", CellType.AOI22, ("a", "b", "x1", "cin")),
    ("co", CellType.NOT, ("ao",)),
)

# --- half adder --------------------------------------------------------------

_t(
    "ha.xor_and",
    CellType.HA,
    {"s": "s", "co": "co"},
    ("s", CellType.XOR2, ("a", "b")),
    ("co", CellType.AND2, ("a", "b")),
)

_t(
    "ha.xor_nand",
    CellType.HA,
    {"s": "s", "co": "co"},
    ("s", CellType.XOR2, ("a", "b")),
    ("n1", CellType.NAND2, ("a", "b")),
    ("co", CellType.NOT, ("n1",)),
)

_t(
    "ha.nand5",
    CellType.HA,
    {"s": "s", "co": "co"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("n2", CellType.NAND2, ("a", "n1")),
    ("n3", CellType.NAND2, ("b", "n1")),
    ("s", CellType.NAND2, ("n2", "n3")),
    ("co", CellType.NOT, ("n1",)),
)

# --- simple gates ------------------------------------------------------------

_t(
    "and2.nand_not",
    CellType.AND2,
    {"y": "y"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("y", CellType.NOT, ("n1",)),
)

_t(
    "or2.nand_inv",
    CellType.OR2,
    {"y": "y"},
    ("na", CellType.NOT, ("a",)),
    ("nb", CellType.NOT, ("b",)),
    ("y", CellType.NAND2, ("na", "nb")),
)

_t(
    "or2.nor_not",
    CellType.OR2,
    {"y": "y"},
    ("n1", CellType.NOR2, ("a", "b")),
    ("y", CellType.NOT, ("n1",)),
)

_t(
    "nor2.nand_inv",
    CellType.NOR2,
    {"y": "y"},
    ("na", CellType.NOT, ("a",)),
    ("nb", CellType.NOT, ("b",)),
    ("t", CellType.NAND2, ("na", "nb")),
    ("y", CellType.NOT, ("t",)),
)

_t(
    "nor2.or_not",
    CellType.NOR2,
    {"y": "y"},
    ("t", CellType.OR2, ("a", "b")),
    ("y", CellType.NOT, ("t",)),
)

_t(
    "nand2.and_not",
    CellType.NAND2,
    {"y": "y"},
    ("t", CellType.AND2, ("a", "b")),
    ("y", CellType.NOT, ("t",)),
)

_t(
    "xor2.nand4",
    CellType.XOR2,
    {"y": "y"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("n2", CellType.NAND2, ("a", "n1")),
    ("n3", CellType.NAND2, ("b", "n1")),
    ("y", CellType.NAND2, ("n2", "n3")),
)

_t(
    "xnor2.not_xor",
    CellType.XNOR2,
    {"y": "y"},
    ("t", CellType.XOR2, ("a", "b")),
    ("y", CellType.NOT, ("t",)),
)

#: flat NAND XNOR: nand(a|b, ~(a&b)) inverts the xor in one extra level
_t(
    "xnor2.nand_flat",
    CellType.XNOR2,
    {"y": "y"},
    ("na", CellType.NOT, ("a",)),
    ("nb", CellType.NOT, ("b",)),
    ("p", CellType.NAND2, ("na", "nb")),
    ("q", CellType.NAND2, ("a", "b")),
    ("y", CellType.NAND2, ("p", "q")),
)

#: deep NAND XNOR: invert the 4-NAND XOR (one more level, one fewer NAND)
_t(
    "xnor2.nand_deep",
    CellType.XNOR2,
    {"y": "y"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("n2", CellType.NAND2, ("a", "n1")),
    ("n3", CellType.NAND2, ("b", "n1")),
    ("x1", CellType.NAND2, ("n2", "n3")),
    ("y", CellType.NOT, ("x1",)),
)

# --- mux and complex cells ---------------------------------------------------

_t(
    "mux2.nand4",
    CellType.MUX2,
    {"y": "y"},
    ("ns", CellType.NOT, ("sel",)),
    ("t1", CellType.NAND2, ("a", "ns")),
    ("t2", CellType.NAND2, ("b", "sel")),
    ("y", CellType.NAND2, ("t1", "t2")),
)

_t(
    "mux2.aoi",
    CellType.MUX2,
    {"y": "y"},
    ("ns", CellType.NOT, ("sel",)),
    ("ao", CellType.AOI22, ("a", "ns", "b", "sel")),
    ("y", CellType.NOT, ("ao",)),
)

_t(
    "mux2.and_or",
    CellType.MUX2,
    {"y": "y"},
    ("ns", CellType.NOT, ("sel",)),
    ("p", CellType.AND2, ("a", "ns")),
    ("q", CellType.AND2, ("b", "sel")),
    ("y", CellType.OR2, ("p", "q")),
)

_t(
    "aoi21.nand",
    CellType.AOI21,
    {"y": "y"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("nc", CellType.NOT, ("c",)),
    ("t", CellType.NAND2, ("n1", "nc")),
    ("y", CellType.NOT, ("t",)),
)

_t(
    "aoi21.and_or",
    CellType.AOI21,
    {"y": "y"},
    ("p", CellType.AND2, ("a", "b")),
    ("t", CellType.OR2, ("p", "c")),
    ("y", CellType.NOT, ("t",)),
)

_t(
    "oai21.nand",
    CellType.OAI21,
    {"y": "y"},
    ("na", CellType.NOT, ("a",)),
    ("nb", CellType.NOT, ("b",)),
    ("o", CellType.NAND2, ("na", "nb")),
    ("y", CellType.NAND2, ("o", "c")),
)

_t(
    "oai21.or_and",
    CellType.OAI21,
    {"y": "y"},
    ("o", CellType.OR2, ("a", "b")),
    ("t", CellType.AND2, ("o", "c")),
    ("y", CellType.NOT, ("t",)),
)

_t(
    "aoi22.nand",
    CellType.AOI22,
    {"y": "y"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("n2", CellType.NAND2, ("c", "d")),
    ("t", CellType.NAND2, ("n1", "n2")),
    ("y", CellType.NOT, ("t",)),
)

_t(
    "aoi22.and_or",
    CellType.AOI22,
    {"y": "y"},
    ("p", CellType.AND2, ("a", "b")),
    ("q", CellType.AND2, ("c", "d")),
    ("t", CellType.OR2, ("p", "q")),
    ("y", CellType.NOT, ("t",)),
)

_t(
    "xor3.xor2",
    CellType.XOR3,
    {"y": "y"},
    ("t", CellType.XOR2, ("a", "b")),
    ("y", CellType.XOR2, ("t", "c")),
)

_t(
    "xor3.nand8",
    CellType.XOR3,
    {"y": "y"},
    ("n1", CellType.NAND2, ("a", "b")),
    ("n2", CellType.NAND2, ("a", "n1")),
    ("n3", CellType.NAND2, ("b", "n1")),
    ("x1", CellType.NAND2, ("n2", "n3")),
    ("m1", CellType.NAND2, ("x1", "c")),
    ("m2", CellType.NAND2, ("x1", "m1")),
    ("m3", CellType.NAND2, ("c", "m1")),
    ("y", CellType.NAND2, ("m2", "m3")),
)

_t(
    "maj3.nand",
    CellType.MAJ3,
    {"y": "y"},
    ("nab", CellType.NAND2, ("a", "b")),
    ("nac", CellType.NAND2, ("a", "c")),
    ("nbc", CellType.NAND2, ("b", "c")),
    ("t", CellType.NAND2, ("nab", "nac")),
    ("tn", CellType.NOT, ("t",)),
    ("y", CellType.NAND2, ("tn", "nbc")),
)

_t(
    "maj3.and_or",
    CellType.MAJ3,
    {"y": "y"},
    ("x", CellType.XOR2, ("a", "b")),
    ("p", CellType.AND2, ("a", "b")),
    ("q", CellType.AND2, ("c", "x")),
    ("y", CellType.OR2, ("p", "q")),
)
