"""Mapping targets and objectives: the two axes the subsystem adds.

A *target* names the cell basis the mapped netlist must consist of.  The
special target ``"generic"`` is the identity: the flow's own FA/HA/gate
primitives are kept as built (the paper's protocol) and the map stage is a
no-op.  Every other target resolves to a :class:`repro.tech.TechLibrary`
from :mod:`repro.tech.target_libs`, whose characterized cell set *is* the
basis (``library.cell_types()``).

The *objective* steers template selection in the covering pass:

``area``
    Minimize the summed cell area of the chosen templates.
``delay``
    Minimize the estimated output arrival time of each covered cell, using
    the target library's pin-to-pin arcs and the fanin arrivals accumulated
    during the topological sweep.
``balanced``
    Minimize the sum of both, each normalized by the best candidate.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.netlist.cells import CellType
from repro.tech.library import TechLibrary
from repro.tech.target_libs import TARGET_LIBRARY_NAMES, resolve_target_library

#: the identity target: keep the generic primitives, skip mapping entirely
GENERIC_TARGET = "generic"

#: every value accepted by the ``target_lib`` config field
TARGET_NAMES: Tuple[str, ...] = (GENERIC_TARGET,) + TARGET_LIBRARY_NAMES

#: every value accepted by the ``map_objective`` config field
MAP_OBJECTIVES: Tuple[str, ...] = ("area", "delay", "balanced")

#: shared help strings (config field metadata and CLI flags derive from them)
TARGET_LIB_HELP = (
    "technology-mapping target cell basis "
    "('generic' = keep the FA/HA primitives unmapped, the paper protocol)"
)
MAP_OBJECTIVE_HELP = "template-selection objective for technology mapping"


def basis_of(library: TechLibrary) -> FrozenSet[CellType]:
    """The cell basis a target library defines."""
    return frozenset(library.cell_types())


__all__ = [
    "GENERIC_TARGET",
    "TARGET_NAMES",
    "MAP_OBJECTIVES",
    "TARGET_LIB_HELP",
    "MAP_OBJECTIVE_HELP",
    "basis_of",
    "resolve_target_library",
]
