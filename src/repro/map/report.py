"""Mapping reports: what a technology-mapping run did and what it cost.

The report carries both views a mapping consumer needs: the *trade-off*
view (pre/post cell count, area and critical-path delay — "pre" against the
source library the netlist was built with, "post" against the target
library) and the *provenance* view (how many times each template fired,
whether the equivalence check against the unmapped netlist passed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.netlist.stats import NetlistStats
from repro.opt.report import OptReport
from repro.tech.library import TechLibrary
from repro.utils.tables import TextTable


@dataclass
class MapReport:
    """Everything one :func:`repro.map.map_netlist` run produced."""

    target_lib: str
    objective: str
    library: TechLibrary
    template_counts: Dict[str, int] = field(default_factory=dict)
    before: Optional[NetlistStats] = None
    after: Optional[NetlistStats] = None
    delay_before: float = 0.0
    delay_after: float = 0.0
    opt_report: Optional[OptReport] = None
    elapsed_s: float = 0.0

    @property
    def equivalence_ok(self) -> Optional[bool]:
        """Outcome of the against-the-unmapped-netlist check (None = skipped)."""
        if self.opt_report is None or self.opt_report.equivalence is None:
            return None
        return self.opt_report.equivalence.equivalent

    @property
    def cells_mapped(self) -> int:
        """Total template applications (out-of-basis cells covered)."""
        return sum(self.template_counts.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-able record for artifacts, cache entries and CLI ``--json``."""
        return {
            "target_lib": self.target_lib,
            "objective": self.objective,
            "cells_mapped": self.cells_mapped,
            "template_counts": dict(sorted(self.template_counts.items())),
            "cells_before": self.before.num_cells if self.before else None,
            "cells_after": self.after.num_cells if self.after else None,
            "area_before": self.before.area if self.before else None,
            "area_after": self.after.area if self.after else None,
            "delay_before": self.delay_before,
            "delay_after": self.delay_after,
            "cell_counts_after": dict(self.after.cell_counts) if self.after else None,
            "equivalence_ok": self.equivalence_ok,
            "elapsed_s": round(self.elapsed_s, 6),
        }

    def render(self) -> str:
        """Human-readable report: template table plus the pre/post deltas."""
        table = TextTable(["template", "applications"])
        for name, count in sorted(self.template_counts.items()):
            table.add_row([name, count])
        lines = [
            table.render(
                title=f"Technology mapping ({self.target_lib}, {self.objective})"
            )
        ]
        if self.before is not None and self.after is not None:
            area_text = ""
            if self.before.area is not None and self.after.area is not None:
                area_text = (
                    f", area {self.before.area:.1f} -> {self.after.area:.1f}"
                )
            lines.append(
                f"cells {self.before.num_cells} -> {self.after.num_cells}"
                f"{area_text}, delay {self.delay_before:.3f} -> "
                f"{self.delay_after:.3f} ns"
            )
        if self.equivalence_ok is not None:
            equivalence = self.opt_report.equivalence
            mode = "exhaustive" if equivalence.exhaustive else "random"
            status = "ok" if equivalence.equivalent else "FAILED"
            lines.append(
                f"equivalence vs unmapped: {status} "
                f"({equivalence.vectors_checked} {mode} vectors)"
            )
        return "\n".join(lines)
