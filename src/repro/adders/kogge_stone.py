"""Kogge-Stone parallel-prefix final adder.

The fastest (logarithmic-depth) final adder provided; used by the final-adder
ablation benchmark to show how much of the end-to-end delay is attributable to
the carry-propagate stage versus the compressor tree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.adders.common import and2, normalize_operand, or2, xor2
from repro.netlist.core import Bus, Net, Netlist


def kogge_stone_adder(
    netlist: Netlist,
    operand_a: Sequence[Optional[Net]],
    operand_b: Sequence[Optional[Net]],
    width: int,
    name: str = "sum",
) -> Bus:
    """Sum two LSB-first operands with a Kogge-Stone prefix network."""
    bits_a = normalize_operand(netlist, operand_a, width)
    bits_b = normalize_operand(netlist, operand_b, width)

    propagate = [xor2(netlist, bits_a[i], bits_b[i]) for i in range(width)]
    generate = [and2(netlist, bits_a[i], bits_b[i]) for i in range(width)]

    # Prefix tree: after processing, prefix_g[i] is the group-generate of bits i..0.
    prefix_g: List[Net] = list(generate)
    prefix_p: List[Net] = list(propagate)
    distance = 1
    while distance < width:
        next_g = list(prefix_g)
        next_p = list(prefix_p)
        for index in range(distance, width):
            carry_from_below = and2(netlist, prefix_p[index], prefix_g[index - distance])
            next_g[index] = or2(netlist, prefix_g[index], carry_from_below)
            next_p[index] = and2(netlist, prefix_p[index], prefix_p[index - distance])
        prefix_g = next_g
        prefix_p = next_p
        distance *= 2

    sums: List[Net] = [propagate[0]]
    for index in range(1, width):
        sums.append(xor2(netlist, propagate[index], prefix_g[index - 1]))
    return Bus(name, sums)
