"""Carry-select final adder (uniform block size, ripple inside blocks)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.adders.common import mux2, normalize_operand
from repro.netlist.cells import CellType
from repro.netlist.core import Bus, Net, Netlist


def _ripple_block(
    netlist: Netlist,
    bits_a: Sequence[Net],
    bits_b: Sequence[Net],
    carry_in: Net,
) -> Tuple[List[Net], Net]:
    """Ripple-add a block with an explicit carry-in; return (sums, carry_out)."""
    sums: List[Net] = []
    carry = carry_in
    for a, b in zip(bits_a, bits_b):
        cell = netlist.add_cell(CellType.FA, {"a": a, "b": b, "cin": carry})
        sums.append(cell.outputs["s"])
        carry = cell.outputs["co"]
    return sums, carry


def carry_select_adder(
    netlist: Netlist,
    operand_a: Sequence[Optional[Net]],
    operand_b: Sequence[Optional[Net]],
    width: int,
    name: str = "sum",
    block_size: int = 4,
) -> Bus:
    """Sum two LSB-first operands with a carry-select structure.

    The first block is a plain ripple block with carry-in 0; every later block
    is computed twice (carry-in 0 and 1) and the real carry selects between
    the two candidate sums with MUX2 cells.
    """
    bits_a = normalize_operand(netlist, operand_a, width)
    bits_b = normalize_operand(netlist, operand_b, width)
    zero = netlist.const(0)
    one = netlist.const(1)

    sums: List[Net] = []
    first_end = min(block_size, width)
    block_sums, carry = _ripple_block(
        netlist, bits_a[:first_end], bits_b[:first_end], zero
    )
    sums.extend(block_sums)

    start = first_end
    while start < width:
        end = min(start + block_size, width)
        sums_zero, carry_zero = _ripple_block(
            netlist, bits_a[start:end], bits_b[start:end], zero
        )
        sums_one, carry_one = _ripple_block(
            netlist, bits_a[start:end], bits_b[start:end], one
        )
        for low, high in zip(sums_zero, sums_one):
            sums.append(mux2(netlist, low, high, carry))
        carry = mux2(netlist, carry_zero, carry_one, carry)
        start = end
    return Bus(name, sums)
