"""Carry-propagate (final) adder generators.

After compressor-tree reduction every column holds at most two addends; these
modules build the single carry-propagate adder that sums the two remaining
rows.  The paper notes the final adder "can be implemented with any of several
types of modules" — four common architectures are provided, all emitting
bit-level netlists so timing/power/area are measured with the same engines as
the tree itself.
"""

from repro.adders.factory import FINAL_ADDER_KINDS, build_final_adder
from repro.adders.ripple import ripple_carry_adder
from repro.adders.cla import carry_lookahead_adder
from repro.adders.carry_select import carry_select_adder
from repro.adders.kogge_stone import kogge_stone_adder

__all__ = [
    "FINAL_ADDER_KINDS",
    "build_final_adder",
    "ripple_carry_adder",
    "carry_lookahead_adder",
    "carry_select_adder",
    "kogge_stone_adder",
]
