"""Ripple-carry final adder."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.adders.common import normalize_operand
from repro.netlist.cells import CellType
from repro.netlist.core import Bus, Net, Netlist


def ripple_carry_adder(
    netlist: Netlist,
    operand_a: Sequence[Optional[Net]],
    operand_b: Sequence[Optional[Net]],
    width: int,
    name: str = "sum",
    carry_in: Optional[Net] = None,
) -> Bus:
    """Sum two LSB-first operands with a ripple-carry chain.

    The result is truncated to ``width`` bits (no carry-out net is produced),
    matching the modulo-2**W semantics used throughout the package.
    """
    bits_a = normalize_operand(netlist, operand_a, width)
    bits_b = normalize_operand(netlist, operand_b, width)

    sums: List[Net] = []
    carry: Optional[Net] = carry_in
    for index in range(width):
        if carry is None:
            cell = netlist.add_cell(
                CellType.HA, {"a": bits_a[index], "b": bits_b[index]}
            )
        else:
            cell = netlist.add_cell(
                CellType.FA, {"a": bits_a[index], "b": bits_b[index], "cin": carry}
            )
        sums.append(cell.outputs["s"])
        carry = cell.outputs["co"]
    return Bus(name, sums)
