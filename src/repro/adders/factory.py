"""Final-adder factory: build any of the supported adder architectures by name."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.adders.carry_select import carry_select_adder
from repro.adders.cla import carry_lookahead_adder
from repro.adders.kogge_stone import kogge_stone_adder
from repro.adders.ripple import ripple_carry_adder
from repro.errors import NetlistError
from repro.netlist.core import Bus, Net, Netlist

_BUILDERS: Dict[str, Callable[..., Bus]] = {
    "ripple": ripple_carry_adder,
    "cla": carry_lookahead_adder,
    "carry_select": carry_select_adder,
    "kogge_stone": kogge_stone_adder,
}

#: names accepted by :func:`build_final_adder`
FINAL_ADDER_KINDS = tuple(sorted(_BUILDERS))


def build_final_adder(
    netlist: Netlist,
    operand_a: Sequence[Optional[Net]],
    operand_b: Sequence[Optional[Net]],
    width: int,
    kind: str = "cla",
    name: str = "sum",
) -> Bus:
    """Build the final carry-propagate adder of the given architecture."""
    try:
        builder = _BUILDERS[kind]
    except KeyError as exc:
        raise NetlistError(
            f"unknown final adder kind {kind!r}; expected one of {FINAL_ADDER_KINDS}"
        ) from exc
    return builder(netlist, operand_a, operand_b, width, name=name)
