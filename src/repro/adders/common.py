"""Shared helpers for the adder generators."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import NetlistError
from repro.netlist.cells import CellType
from repro.netlist.core import Net, Netlist


def normalize_operand(
    netlist: Netlist, bits: Sequence[Optional[Net]], width: int
) -> List[Net]:
    """Pad/truncate an LSB-first bit list to ``width``, mapping ``None`` to 0.

    The compressor tree legitimately leaves holes (columns that ended with
    fewer than two addends); the adders treat them as constant zeros.
    """
    if width <= 0:
        raise NetlistError(f"adder width must be positive, got {width}")
    zero = netlist.const(0)
    padded: List[Net] = []
    for index in range(width):
        bit = bits[index] if index < len(bits) else None
        padded.append(bit if bit is not None else zero)
    return padded


def xor2(netlist: Netlist, a: Net, b: Net) -> Net:
    """Create an XOR2 gate and return its output net."""
    return netlist.add_cell(CellType.XOR2, {"a": a, "b": b}).outputs["y"]


def and2(netlist: Netlist, a: Net, b: Net) -> Net:
    """Create an AND2 gate and return its output net."""
    return netlist.add_cell(CellType.AND2, {"a": a, "b": b}).outputs["y"]


def or2(netlist: Netlist, a: Net, b: Net) -> Net:
    """Create an OR2 gate and return its output net."""
    return netlist.add_cell(CellType.OR2, {"a": a, "b": b}).outputs["y"]


def mux2(netlist: Netlist, a: Net, b: Net, sel: Net) -> Net:
    """Create a MUX2 gate (output = b when sel else a) and return its output."""
    return netlist.add_cell(CellType.MUX2, {"a": a, "b": b, "sel": sel}).outputs["y"]


def and_chain(netlist: Netlist, nets: Sequence[Net]) -> Net:
    """AND of one or more nets (balanced tree)."""
    if not nets:
        raise NetlistError("and_chain requires at least one net")
    level = list(nets)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(and2(netlist, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def or_chain(netlist: Netlist, nets: Sequence[Net]) -> Net:
    """OR of one or more nets (balanced tree)."""
    if not nets:
        raise NetlistError("or_chain requires at least one net")
    level = list(nets)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(or2(netlist, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
