"""Carry-lookahead final adder (4-bit lookahead groups, rippled between groups).

Within each 4-bit group the carries are computed in two logic levels from the
per-bit generate/propagate signals; groups are chained through their carry-out.
This is the classic 74x283-style structure and is the default final adder of
the synthesis flows: much faster than a ripple chain, considerably cheaper
than a full parallel-prefix adder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.adders.common import and_chain, and2, normalize_operand, or_chain, xor2
from repro.netlist.core import Bus, Net, Netlist


def carry_lookahead_adder(
    netlist: Netlist,
    operand_a: Sequence[Optional[Net]],
    operand_b: Sequence[Optional[Net]],
    width: int,
    name: str = "sum",
    group_size: int = 4,
    carry_in: Optional[Net] = None,
) -> Bus:
    """Sum two LSB-first operands with group carry-lookahead logic.

    ``carry_in`` (optional) is added at bit 0 — the conventional flow uses it
    for two's-complement subtraction (a + ~b + 1).
    """
    bits_a = normalize_operand(netlist, operand_a, width)
    bits_b = normalize_operand(netlist, operand_b, width)

    propagate = [xor2(netlist, bits_a[i], bits_b[i]) for i in range(width)]
    generate = [and2(netlist, bits_a[i], bits_b[i]) for i in range(width)]

    sums: List[Net] = []
    carry: Optional[Net] = carry_in  # carry into the current group (None = 0)
    for group_start in range(0, width, group_size):
        group_end = min(group_start + group_size, width)
        # carries[k] = carry into bit (group_start + k); carries[0] is the group carry-in
        carries: List[Optional[Net]] = [carry]
        for offset in range(1, group_end - group_start + 1):
            bit = group_start + offset - 1
            # c_{k+1} = g_k + p_k g_{k-1} + ... + p_k..p_{start} c_in
            terms: List[Net] = []
            for source in range(group_start, bit + 1):
                factors = [generate[source]] + [propagate[j] for j in range(source + 1, bit + 1)]
                terms.append(and_chain(netlist, factors))
            if carry is not None:
                factors = [propagate[j] for j in range(group_start, bit + 1)] + [carry]
                terms.append(and_chain(netlist, factors))
            carries.append(or_chain(netlist, terms))
        for offset, bit in enumerate(range(group_start, group_end)):
            carry_in = carries[offset]
            if carry_in is None:
                sums.append(propagate[bit])
            else:
                sums.append(xor2(netlist, propagate[bit], carry_in))
        carry = carries[group_end - group_start]
    return Bus(name, sums)
