"""The verification report: one JSON-able record of a whole verify run.

The report artifact follows the same conventions as the sweep artifact
(:mod:`repro.explore.io`): a ``schema`` / ``schema_version`` header, a
summary block, then the per-case records in a deterministic field order, so
reports diff cleanly and the golden-file test can pin the exact byte shape
(wall-times normalized).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro._version import __version__

REPORT_SCHEMA = "repro.verify.report"
REPORT_SCHEMA_VERSION = 1


@dataclass
class VerifyReport:
    """Everything one verification run produced."""

    seed: int
    requested_cases: int
    fuzz: List[Dict[str, object]] = field(default_factory=list)
    metamorphic: List[Dict[str, object]] = field(default_factory=list)
    golden: Optional[Dict[str, object]] = None
    jobs: int = 1
    used_fallback: bool = False
    elapsed_s: float = 0.0

    # ------------------------------------------------------------- verdicts

    @property
    def fuzz_failures(self) -> List[Dict[str, object]]:
        """Fuzz cases that crashed, failed validation or broke equivalence."""
        return [record for record in self.fuzz if not record["ok"]]

    @property
    def metamorphic_failures(self) -> List[Dict[str, object]]:
        """Metamorphic checks that were violated or crashed."""
        return [record for record in self.metamorphic if not record["ok"]]

    @property
    def metamorphic_skips(self) -> List[Dict[str, object]]:
        """Metamorphic checks that did not apply to their base case."""
        return [record for record in self.metamorphic if record.get("skipped")]

    @property
    def golden_drift(self) -> List[str]:
        """Golden-metric drift messages (empty when stable or skipped)."""
        if self.golden is None:
            return []
        return list(self.golden.get("drift", ()))

    @property
    def ok(self) -> bool:
        """True when every phase passed."""
        golden_ok = self.golden is None or bool(self.golden.get("ok"))
        return not self.fuzz_failures and not self.metamorphic_failures and golden_ok

    # ---------------------------------------------------------- serialization

    def summary(self) -> Dict[str, object]:
        """The summary block of the JSON artifact."""
        return {
            "ok": self.ok,
            "seed": self.seed,
            "requested_cases": self.requested_cases,
            "fuzz_cases": len(self.fuzz),
            "fuzz_failed": len(self.fuzz_failures),
            "metamorphic_checks": len(self.metamorphic),
            "metamorphic_failed": len(self.metamorphic_failures),
            "metamorphic_skipped": len(self.metamorphic_skips),
            "golden_checked": (
                self.golden.get("checked") if self.golden is not None else None
            ),
            "golden_drift": len(self.golden_drift),
            "golden_blessed": (
                bool(self.golden.get("blessed")) if self.golden is not None else False
            ),
            "jobs": self.jobs,
            "used_fallback": self.used_fallback,
            "elapsed_s": round(self.elapsed_s, 6),
        }

    def to_json_obj(self) -> Dict[str, object]:
        """The full JSON artifact, in deterministic field order."""
        return {
            "schema": REPORT_SCHEMA,
            "schema_version": REPORT_SCHEMA_VERSION,
            "tool_version": __version__,
            "summary": self.summary(),
            "fuzz": list(self.fuzz),
            "metamorphic": list(self.metamorphic),
            "golden": self.golden,
        }

    def render(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        summary = self.summary()
        lines = [
            f"fuzz:        {summary['fuzz_cases']} case(s), "
            f"{summary['fuzz_failed']} failed",
            f"metamorphic: {summary['metamorphic_checks']} check(s), "
            f"{summary['metamorphic_failed']} failed, "
            f"{summary['metamorphic_skipped']} skipped",
        ]
        if self.golden is None:
            lines.append("golden:      skipped")
        elif self.golden.get("blessed"):
            lines.append(
                f"golden:      blessed {self.golden['checked']} entries "
                f"-> {self.golden['path']}"
            )
        else:
            lines.append(
                f"golden:      {self.golden['checked']} entries, "
                f"{len(self.golden_drift)} drifted"
            )
        for record in self.fuzz_failures:
            lines.append(f"  FUZZ FAILED {record['label']}: {record['error']}")
        for record in self.metamorphic_failures:
            lines.append(
                f"  PROPERTY VIOLATED {record['property']} on {record['label']}: "
                f"{record['error']}"
            )
        for message in self.golden_drift:
            lines.append(f"  GOLDEN DRIFT {message}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"verify: {verdict}, seed={self.seed}, jobs={self.jobs}, "
            f"{self.elapsed_s:.2f}s"
            + (", serial-fallback" if self.used_fallback else "")
        )
        return "\n".join(lines)


def write_report(report: VerifyReport, path: Union[str, Path]) -> Path:
    """Write the JSON report artifact to ``path``."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json_obj(), handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
