"""Metric regression harness: tolerance-band golden snapshots.

Functional equivalence says a netlist is *correct*; it says nothing about
the reported numbers staying *stable*.  This harness pins the headline
metrics (delay, area, energy, cell counts) of a small fixed set of flow
configurations to a committed JSON snapshot under ``tests/golden/metrics/``
and reports drift:

* integer metrics (cell/FA/HA counts) must match exactly;
* float metrics must stay within a relative tolerance band (the committed
  snapshot records its own tolerance, so tightening the band is a one-line
  blessed change);
* snapshot entries and current runs must cover the same configurations —
  a missing or extra entry is drift too (the snapshot must be re-blessed
  when the golden set changes).

``repro-datapath verify --bless`` (or :func:`bless_golden`) rewrites the
snapshot from the current run; the file is deterministic bytes (sorted
keys, fixed indentation) so blessing is an auditable one-file diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.api.config import FlowConfig
from repro.errors import VerificationError
from repro.explore.engine import run_sweep
from repro.explore.spec import SweepPoint

GOLDEN_SCHEMA = "repro.verify.golden-metrics"
GOLDEN_SCHEMA_VERSION = 1

#: snapshot location inside the repository
_GOLDEN_RELATIVE = Path("tests") / "golden" / "metrics" / "metrics.json"


def _default_golden_path() -> str:
    """The committed snapshot, anchored to the repository this code runs from.

    ``src/repro/verify/golden.py`` sits three levels below the repository
    root, so the checkout layout resolves independently of the current
    working directory (``repro-datapath verify`` works from anywhere).  For
    an installed package with no repository around it, fall back to the
    cwd-relative spelling — ``--golden`` / ``--bless`` remain the explicit
    escape hatch.
    """
    root = Path(__file__).resolve().parents[3]
    anchored = root / _GOLDEN_RELATIVE
    if anchored.parent.is_dir() or (root / "pyproject.toml").is_file():
        return str(anchored)
    return str(_GOLDEN_RELATIVE)


DEFAULT_GOLDEN_PATH = _default_golden_path()

#: default relative tolerance band for float metrics (recorded per snapshot)
DEFAULT_REL_TOL = 0.02

#: designs pinned by the snapshot: the smallest benchmark, a multi-operand
#: polynomial and a real filter, covering squarer, adder and MAC structure
GOLDEN_DESIGNS = ("x2", "x2_plus_x_plus_y", "iir")

#: per-design methods pinned at -O0 (the paper's Table 1 trio)
GOLDEN_METHODS = ("conventional", "csa_opt", "fa_aot")

#: metrics compared exactly
_EXACT_METRICS = ("cell_count", "fa_count", "ha_count")

#: metrics compared within the tolerance band
_FLOAT_METRICS = (
    "delay_ns",
    "area",
    "total_energy",
    "tree_energy",
    "place_hpwl",
    "cts_skew_ns",
)


def golden_points() -> List["SweepPoint"]:
    """The fixed configuration set pinned by the snapshot.

    Per design: the Table 1 method trio as built, plus ``fa_aot`` at
    ``-O2`` so optimizer regressions show up in the metrics as well, plus
    ``fa_aot`` placed on the auto-sized fabric so placement QoR (HPWL,
    wire-aware delay, CTS skew) is pinned too.
    """
    points: List[SweepPoint] = []
    for design in GOLDEN_DESIGNS:
        for method in GOLDEN_METHODS:
            points.append(SweepPoint.from_config(design, FlowConfig(method=method)))
        points.append(
            SweepPoint.from_config(design, FlowConfig(method="fa_aot", opt_level=2))
        )
        points.append(
            SweepPoint.from_config(design, FlowConfig(method="fa_aot", place=True))
        )
    return points


def snapshot_entry(metrics: Dict[str, object]) -> Dict[str, object]:
    """The snapshot record of one run: the pinned metrics only, in order."""
    return {name: metrics.get(name) for name in _EXACT_METRICS + _FLOAT_METRICS}


def run_golden_points(
    jobs: int = 1,
) -> Tuple[Dict[str, Dict[str, object]], bool]:
    """Synthesize the golden set (on the sweep pool) and snapshot the metrics.

    Returns ``(entries, used_fallback)`` — the fallback flag records a
    broken worker pool, like every other phase.
    """
    sweep = run_sweep(golden_points(), jobs=jobs)
    if not sweep.ok:
        failures = "; ".join(
            f"{outcome.point.label()}: {outcome.error}" for outcome in sweep.failures
        )
        raise VerificationError(f"golden-point synthesis failed: {failures}")
    entries: Dict[str, Dict[str, object]] = {}
    for outcome in sweep.outcomes:
        entries[outcome.point.label()] = snapshot_entry(outcome.metrics)
    return entries, sweep.used_fallback


def load_golden(path: Union[str, Path]) -> Optional[Dict[str, object]]:
    """The parsed snapshot, or ``None`` when no (valid) snapshot exists."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if (
        not isinstance(data, dict)
        or data.get("schema") != GOLDEN_SCHEMA
        or data.get("schema_version") != GOLDEN_SCHEMA_VERSION
        or not isinstance(data.get("entries"), dict)
    ):
        return None
    return data


def bless_golden(
    entries: Dict[str, Dict[str, object]],
    path: Union[str, Path],
    rel_tol: float = DEFAULT_REL_TOL,
) -> Path:
    """Write ``entries`` as the new snapshot (deterministic bytes)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": GOLDEN_SCHEMA,
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "tolerance": {"rel": rel_tol},
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def compare_to_golden(
    entries: Dict[str, Dict[str, object]],
    golden: Dict[str, object],
) -> List[str]:
    """Drift messages between a current run and a snapshot (empty = stable)."""
    rel_tol = float(golden.get("tolerance", {}).get("rel", DEFAULT_REL_TOL))
    pinned: Dict[str, Dict[str, object]] = golden["entries"]  # type: ignore[assignment]
    drift: List[str] = []
    for label in sorted(set(pinned) - set(entries)):
        drift.append(f"{label}: pinned in the snapshot but not produced by this run")
    for label in sorted(set(entries) - set(pinned)):
        drift.append(f"{label}: produced by this run but missing from the snapshot")
    for label in sorted(set(pinned) & set(entries)):
        expected, current = pinned[label], entries[label]
        for name in _EXACT_METRICS:
            if expected.get(name) != current.get(name):
                drift.append(
                    f"{label}: {name} changed {expected.get(name)!r} -> "
                    f"{current.get(name)!r}"
                )
        for name in _FLOAT_METRICS:
            want, have = expected.get(name), current.get(name)
            if want is None and have is None:
                continue
            if want is None or have is None:
                drift.append(f"{label}: {name} changed {want!r} -> {have!r}")
                continue
            reference = max(abs(float(want)), 1e-12)
            if abs(float(have) - float(want)) / reference > rel_tol:
                drift.append(
                    f"{label}: {name} drifted beyond ±{rel_tol:.1%}: "
                    f"{want!r} -> {have!r}"
                )
    return drift


def run_golden(
    path: Union[str, Path] = DEFAULT_GOLDEN_PATH,
    jobs: int = 1,
    bless: bool = False,
) -> Dict[str, object]:
    """Run the golden set and compare (or bless); returns a JSON-able record."""
    entries, used_fallback = run_golden_points(jobs=jobs)
    record: Dict[str, object] = {
        "path": str(path),
        "checked": len(entries),
        "blessed": False,
        "used_fallback": used_fallback,
        "drift": [],
        "ok": True,
    }
    if bless:
        bless_golden(entries, path)
        record["blessed"] = True
        return record
    golden = load_golden(path)
    if golden is None:
        record["ok"] = False
        record["drift"] = [
            f"no valid golden snapshot at {path}; run `repro-datapath verify "
            f"--bless` to create one"
        ]
        return record
    drift = compare_to_golden(entries, golden)
    record["drift"] = drift
    record["ok"] = not drift
    return record
