"""Deliberately broken rewrite passes for mutation-testing the fuzzer.

A verification subsystem needs a self-test: if the checks cannot catch a
*known* bug, a passing report means nothing.  The passes here are valid
:class:`~repro.opt.base.RewritePass` implementations — injectable through
the ordinary :class:`~repro.opt.manager.PassManager` API — that preserve
every structural invariant while silently changing the computed function.
``validate_netlist`` must stay green on a mutated netlist and the
differential equivalence check must go red; tests assert both directions.
"""

from __future__ import annotations

from repro.netlist.cells import CellType
from repro.netlist.core import Netlist
from repro.opt.base import RewritePass, retire_cell


class BrokenAndToOrPass(RewritePass):
    """Rewrites the first ``AND2`` into an ``OR2`` over the same inputs.

    Every synthesized netlist carries ``AND2`` partial-product cells, so
    this mutation applies universally; the two gates differ on three of
    four input combinations, so any functional check worth its name must
    flag the result.  At most one cell is rewritten per invocation.
    """

    name = "broken_and_to_or"

    def run(self, netlist: Netlist) -> int:
        for cell in list(netlist.cells.values()):
            if cell.cell_type is not CellType.AND2:
                continue
            a, b = cell.inputs["a"], cell.inputs["b"]
            if a.is_constant or b.is_constant or a is b:
                continue  # could degenerate to an equivalent function
            replacement = netlist.add_cell(CellType.OR2, {"a": a, "b": b})
            retire_cell(netlist, cell, {"y": replacement.outputs["y"]})
            return 1
        return 0


class BrokenDropCarryPass(RewritePass):
    """Rebinds the first non-constant ``FA`` carry-in to constant zero.

    A subtler mutation than a gate swap: the netlist stays perfectly
    well-formed, only a single carry is lost somewhere in the middle of the
    compressor tree.
    """

    name = "broken_drop_carry"

    def run(self, netlist: Netlist) -> int:
        zero = None
        for cell in list(netlist.cells.values()):
            if cell.cell_type is not CellType.FA:
                continue
            cin = cell.inputs["cin"]
            if cin.is_constant:
                continue
            if zero is None:
                zero = netlist.const(0)
            netlist.rebind_input(cell, "cin", zero)
            return 1
        return 0
