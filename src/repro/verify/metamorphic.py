"""Metamorphic verification: properties that must hold *across* configs.

A differential check ties one netlist to its reference model; a metamorphic
check ties two flow runs to each other.  Each property takes one base fuzz
case (a :class:`~repro.explore.spec.SweepPoint`), derives a pair of related
configurations and asserts the invariant linking their outcomes:

``opt_levels_equivalent``
    The ``-O2`` netlist computes the same function as the ``-O0`` netlist
    (checked on shared stimulus, independently of the optimizer's own
    internal equivalence safety net).
``fold_square_invariant``
    Folding symmetric ``x*x`` partial products never changes the function
    (matrix methods only; skipped for ``conventional``).
``skipped_analyses_stable``
    Skipping analysis passes must not change the synthesized netlist —
    analyses are observers, not transformations.
``serialize_roundtrip``
    ``netlist -> dict -> netlist`` reproduces the structure bit-exactly:
    the rebuilt netlist validates, re-serializes to the identical dict and
    simulates identically.
``map_equivalent``
    Technology mapping never changes the function: for *every* target
    library and *every* mapping objective, the mapped netlist computes the
    same outputs as the unmapped (``target_lib="generic"``) run, and
    contains only cells of the target basis.
``place_preserves_function``
    Placement never changes the function: the ``place=True`` run's netlist
    is structurally identical to the ``place=False`` run's, simulates
    identically on shared stimulus, and its placement validates with zero
    findings.

Properties are registered in :data:`METAMORPHIC_PROPERTIES` (open for
extension, mirroring the flow's analysis registry) and fan out over the
exploration engine's worker pool as ``(property, point)`` tasks.
:func:`check_property` never raises — violations and crashes are captured
in the returned record.
"""

from __future__ import annotations

import time
from dataclasses import replace
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs

from repro.api.config import FlowConfig
from repro.api.flow import Flow
from repro.api.result import FlowResult
from repro.designs.base import DatapathDesign
from repro.designs.registry import get_design
from repro.errors import VerificationError
from repro.explore.engine import parallel_map
from repro.netlist.serialize import netlist_from_dict, netlist_to_dict
from repro.netlist.validate import validate_netlist
from repro.sim.evaluator import evaluate_vectors
from repro.sim.vectors import exhaustive_vectors, random_vectors, total_input_width

#: stimulus parameters for cross-run output comparison: exhaustive up to
#: this many total input bits, a fixed-seed random sample beyond it
EXHAUSTIVE_WIDTH_LIMIT = 12
RANDOM_VECTOR_COUNT = 128
VECTOR_SEED = 97

#: a property body: (design, base config) -> detail dict, raising
#: :class:`VerificationError` on violation
PropertyFn = Callable[[DatapathDesign, FlowConfig], Dict[str, object]]

METAMORPHIC_PROPERTIES: Dict[str, PropertyFn] = {}


def metamorphic_property(name: str) -> Callable[[PropertyFn], PropertyFn]:
    """Decorator: register a metamorphic property under ``name``."""

    def deco(fn: PropertyFn) -> PropertyFn:
        METAMORPHIC_PROPERTIES[name] = fn
        return fn

    return deco


def property_names() -> Tuple[str, ...]:
    """Names of all registered properties, in registration order."""
    return tuple(METAMORPHIC_PROPERTIES)


class _Skip(Exception):
    """Internal: a property does not apply to this base case."""


def _shared_vectors(design: DatapathDesign) -> List[Dict[str, int]]:
    """One stimulus set both runs of a property are simulated on."""
    if total_input_width(design.signals) <= EXHAUSTIVE_WIDTH_LIMIT:
        return list(exhaustive_vectors(design.signals))
    return random_vectors(design.signals, RANDOM_VECTOR_COUNT, seed=VECTOR_SEED)


def _outputs(result: FlowResult, vectors: List[Dict[str, int]]) -> List[int]:
    """Per-vector output-bus values of one run, modulo the output width."""
    modulo = 1 << result.output_width
    values = evaluate_vectors(result.netlist, vectors).bus_values(result.output_bus)
    return [value % modulo for value in values]


def _first_diff(a: List[int], b: List[int], vectors: List[Dict[str, int]]) -> Dict:
    """The first mismatching vector of two output streams (for reports)."""
    for vector, left, right in zip(vectors, a, b):
        if left != right:
            record = dict(vector)
            record["left"] = left
            record["right"] = right
            return record
    return {}


def _quiet(config: FlowConfig, **overrides: object) -> FlowConfig:
    """The cheapest config computing the same netlist (stats analysis only)."""
    return replace(config, analyses=("stats",), opt_validate=False, **overrides)


@metamorphic_property("opt_levels_equivalent")
def _check_opt_levels(design: DatapathDesign, config: FlowConfig) -> Dict[str, object]:
    base = Flow(_quiet(config, opt_level=0)).run(design)
    optimized = Flow(_quiet(config, opt_level=2)).run(design)
    vectors = _shared_vectors(design)
    left, right = _outputs(base, vectors), _outputs(optimized, vectors)
    if left != right:
        raise VerificationError(
            f"-O2 netlist differs from -O0 netlist; first mismatch: "
            f"{_first_diff(left, right, vectors)}"
        )
    return {
        "vectors": len(vectors),
        "cells_o0": base.cell_count,
        "cells_o2": optimized.cell_count,
    }


@metamorphic_property("fold_square_invariant")
def _check_fold_square(design: DatapathDesign, config: FlowConfig) -> Dict[str, object]:
    if config.method == "conventional":
        raise _Skip("fold_square_products only applies to matrix methods")
    unfolded = Flow(_quiet(config, fold_square_products=False)).run(design)
    folded = Flow(_quiet(config, fold_square_products=True)).run(design)
    vectors = _shared_vectors(design)
    left, right = _outputs(unfolded, vectors), _outputs(folded, vectors)
    if left != right:
        raise VerificationError(
            f"folded squarer differs from unfolded; first mismatch: "
            f"{_first_diff(left, right, vectors)}"
        )
    return {
        "vectors": len(vectors),
        "cells_unfolded": unfolded.cell_count,
        "cells_folded": folded.cell_count,
    }


@metamorphic_property("skipped_analyses_stable")
def _check_skipped_analyses(
    design: DatapathDesign, config: FlowConfig
) -> Dict[str, object]:
    full = Flow(replace(config, analyses=("timing", "power", "stats"))).run(design)
    minimal = Flow(_quiet(config)).run(design)
    for attribute in ("cell_count", "fa_count", "ha_count"):
        left, right = getattr(full, attribute), getattr(minimal, attribute)
        if left != right:
            raise VerificationError(
                f"skipping analyses changed {attribute}: {left} != {right}"
            )
    if full.netlist.num_cells() != minimal.netlist.num_cells():
        raise VerificationError(
            "skipping analyses changed the netlist cell count: "
            f"{full.netlist.num_cells()} != {minimal.netlist.num_cells()}"
        )
    if full.delay_ns is None or minimal.delay_ns is not None:
        raise VerificationError(
            "analysis selection not honoured: full run must report delay, "
            "stats-only run must not"
        )
    return {"cells": full.cell_count}


@metamorphic_property("serialize_roundtrip")
def _check_serialize_roundtrip(
    design: DatapathDesign, config: FlowConfig
) -> Dict[str, object]:
    result = Flow(_quiet(config)).run(design)
    snapshot = netlist_to_dict(result.netlist)
    rebuilt = netlist_from_dict(snapshot)
    validate_netlist(rebuilt)
    if netlist_to_dict(rebuilt) != snapshot:
        raise VerificationError("serialize -> deserialize -> serialize is not stable")
    vectors = _shared_vectors(design)
    modulo = 1 << result.output_width
    original = _outputs(result, vectors)
    resimulated = [
        value % modulo
        for value in evaluate_vectors(rebuilt, vectors).bus_values(result.output_bus)
    ]
    if original != resimulated:
        raise VerificationError(
            f"rebuilt netlist simulates differently; first mismatch: "
            f"{_first_diff(original, resimulated, vectors)}"
        )
    return {"vectors": len(vectors), "cells": result.cell_count}


@metamorphic_property("map_equivalent")
def _check_map_equivalent(
    design: DatapathDesign, config: FlowConfig
) -> Dict[str, object]:
    from repro.map.targets import GENERIC_TARGET, MAP_OBJECTIVES, TARGET_NAMES, basis_of

    base = Flow(_quiet(config, target_lib=GENERIC_TARGET)).run(design)
    vectors = _shared_vectors(design)
    reference = _outputs(base, vectors)
    cells_by_target: Dict[str, int] = {}
    for target in TARGET_NAMES:
        if target == GENERIC_TARGET:
            continue
        for objective in MAP_OBJECTIVES:
            mapped = Flow(
                _quiet(config, target_lib=target, map_objective=objective)
            ).run(design)
            basis = basis_of(mapped.map_report.library)
            stray = sorted(
                {
                    cell.cell_type.value
                    for cell in mapped.netlist.cells.values()
                    if cell.cell_type not in basis
                }
            )
            if stray:
                raise VerificationError(
                    f"{target}/{objective}: mapped netlist contains "
                    f"out-of-basis cell type(s) {stray}"
                )
            produced = _outputs(mapped, vectors)
            if produced != reference:
                raise VerificationError(
                    f"{target}/{objective}: mapped netlist differs from the "
                    f"unmapped run; first mismatch: "
                    f"{_first_diff(reference, produced, vectors)}"
                )
            cells_by_target[f"{target}/{objective}"] = mapped.cell_count
    return {"vectors": len(vectors), "cells": cells_by_target}


@metamorphic_property("place_preserves_function")
def _check_place_preserves_function(
    design: DatapathDesign, config: FlowConfig
) -> Dict[str, object]:
    unplaced = Flow(_quiet(config, place=False)).run(design)
    placed = Flow(_quiet(config, place=True)).run(design)
    report = placed.place_report
    if report is None:
        raise VerificationError("place=True run produced no placement report")
    if report.validation_findings:
        raise VerificationError(
            f"placement validator reported {report.validation_findings} finding(s)"
        )
    # placement must never touch connectivity: the netlists are structurally
    # identical, so simulation equality below can only fail if the placer
    # corrupted the flow context rather than the wires
    if netlist_to_dict(placed.netlist) != netlist_to_dict(unplaced.netlist):
        raise VerificationError(
            "placement changed the netlist structure (cells/nets differ)"
        )
    vectors = _shared_vectors(design)
    left, right = _outputs(unplaced, vectors), _outputs(placed, vectors)
    if left != right:
        raise VerificationError(
            f"placed netlist differs from unplaced; first mismatch: "
            f"{_first_diff(left, right, vectors)}"
        )
    return {
        "vectors": len(vectors),
        "cells": placed.cell_count,
        "hpwl": report.total_hpwl,
        "cts_skew_ns": report.cts_skew_ns,
    }


#: the properties shipped with this module — guaranteed present in pool
#: workers regardless of the multiprocessing start method
_BUILTIN_PROPERTIES = frozenset(METAMORPHIC_PROPERTIES)


def check_property(name: str, point: "SweepPoint") -> Dict[str, object]:  # noqa: F821
    """Run one metamorphic check; never raises.

    The record mirrors the fuzz-case shape: ``ok`` is True for both passing
    and skipped checks (``skipped`` distinguishes them), ``error`` carries
    the violation or crash message.
    """
    start = time.perf_counter()
    record: Dict[str, object] = {
        "property": name,
        "label": "?",
        "point": None,
        "ok": False,
        "skipped": False,
        "detail": None,
        "error": None,
        "elapsed_s": 0.0,
    }
    try:
        fn = METAMORPHIC_PROPERTIES[name]
    except KeyError:
        record["error"] = (
            f"unknown metamorphic property {name!r}; "
            f"expected one of {property_names()}"
        )
        record["elapsed_s"] = time.perf_counter() - start
        return record
    try:
        # identity fields inside the guard: a point whose label or
        # serialization raises yields an error record instead of crashing
        # the pool worker and dropping its telemetry
        record["label"] = point.label()
        record["point"] = point.to_dict()
        with obs.span("verify.property", property=name, case=record["label"]):
            record["detail"] = fn(get_design(point.design), point.config())
        record["ok"] = True
    except _Skip as skip:
        record["ok"] = True
        record["skipped"] = True
        record["detail"] = str(skip)
    except VerificationError as violation:
        record["error"] = str(violation)
    except Exception as exc:  # crash capture, like sweep points
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["elapsed_s"] = time.perf_counter() - start
    return record


def _meta_worker(
    task: Tuple[str, "SweepPoint"], trace: bool = False  # noqa: F821
) -> Dict[str, object]:
    """Picklable pool-worker body for one (property, point) task.

    With ``trace`` set the check runs under its own tracer and the record
    carries the picklable ``telemetry`` payload for the parent to adopt.
    """
    if not trace:
        return check_property(task[0], task[1])
    tracer = obs.Tracer()
    try:
        with obs.tracing(tracer):
            record = check_property(task[0], task[1])
    except Exception as exc:
        # check_property never raises by contract; if that contract is
        # ever broken the spans recorded up to the failure must still
        # reach the parent alongside the error record
        record = {
            "property": task[0], "label": "?", "point": None, "ok": False,
            "skipped": False, "detail": None,
            "error": f"{type(exc).__name__}: {exc}", "elapsed_s": 0.0,
        }
    record["telemetry"] = {
        "spans": tracer.to_dicts(),
        "counters": dict(tracer.counters),
    }
    return record


def run_metamorphic(
    points: Sequence["SweepPoint"],  # noqa: F821
    properties: Optional[Sequence[str]] = None,
    jobs: int = 1,
    progress: Optional[Callable[[Dict[str, object], int, int], None]] = None,
) -> Tuple[List[Dict[str, object]], bool]:
    """Check every property against every base point, fanning out on the pool.

    Returns ``(records, used_fallback)`` ordered point-major (all properties
    of the first point, then the second, ...).  Custom (non-built-in)
    properties force serial execution: under the ``spawn``/``forkserver``
    start methods a pool worker re-imports this module and sees only the
    built-in registry, so a user-registered property would spuriously fail
    as unknown in the worker.
    """
    names = tuple(properties) if properties is not None else property_names()
    tasks = [(name, point) for point in points for name in names]
    if not set(names) <= _BUILTIN_PROPERTIES:
        jobs = 1
    tracer = obs.current_tracer()
    worker = partial(_meta_worker, trace=tracer is not None and jobs > 1)
    results, used_fallback = parallel_map(
        worker, tasks, jobs=jobs, progress=progress
    )
    records = list(results)
    if tracer is not None:
        for record in records:
            telemetry = record.pop("telemetry", None)
            if telemetry:
                tracer.adopt(telemetry.get("spans", ()), telemetry.get("counters"))
    return records, used_fallback
