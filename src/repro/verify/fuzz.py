"""Differential config fuzzing over the :class:`FlowConfig` space.

The fuzzer treats the whole configuration schema as its input grammar: the
sampling domain is derived from :func:`repro.api.config.config_fields`, so a
new config knob is automatically fuzzed the moment it is added to the schema
(the same property the CLI flags and sweep axes already have).  Each sampled
``(design, config)`` case runs through the staged :class:`repro.api.Flow`
and is checked **differentially** against the design's word-level reference
model: the synthesized netlist must compute ``expression(inputs) mod 2**W``
(:func:`repro.sim.equivalence.check_equivalence`) and must satisfy the
structural invariants (:func:`repro.netlist.validate.validate_netlist`).

Everything is seeded: the case sampler takes one fuzzer seed, and each
case's stimulus seed is derived from the case's content key, so a failing
case can be replayed bit-exactly from the report alone.

Cases fan out over the exploration engine's worker pool
(:func:`repro.explore.engine.parallel_map`); :func:`check_point` never
raises — failures are captured in the returned record, mirroring the
per-point error capture of sweeps.
"""

from __future__ import annotations

import argparse
import hashlib
import random
import time
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.api.config import FlowConfig, config_fields
from repro.api.flow import Flow
from repro.designs.registry import get_design, list_designs
from repro.explore.engine import parallel_map
from repro.explore.spec import SweepPoint
from repro.netlist.validate import validate_netlist
from repro.opt.base import RewritePass
from repro.opt.manager import PassManager
from repro.sim.equivalence import check_equivalence

#: config seeds are drawn from this range when the domain leaves them free
SEED_DRAW_RANGE = 1 << 16

#: tri-state values accepted by boolean domain flags (mirrors the sweep CLI)
_BOOL_DOMAIN_VALUES: Dict[str, Tuple[bool, ...]] = {
    "off": (False,),
    "on": (True,),
    "both": (False, True),
}

#: config fields the fuzzer pins instead of sampling: ``analyses`` is
#: exercised by the metamorphic properties (skipping passes must not change
#: the netlist), ``opt_validate`` / ``map_validate`` are always on so every
#: case also checks the structural invariants after each rewrite/map pass
_PINNED_FIELDS = ("analyses", "opt_validate", "map_validate")

#: a fuzz domain: config field name -> candidate values (None = draw an
#: integer from the rng, used for the free-form ``seed`` field)
Domain = Dict[str, Optional[Tuple]]


def default_domain() -> Domain:
    """The full sampling domain, derived from the config schema.

    Fields with declared choices sample uniformly from them, booleans from
    ``(False, True)``, and choice-free integer fields (the flow ``seed``,
    ``place_seed``) are drawn from the rng.  A field may pin its own
    domain through the schema's ``fuzz`` metadata — the fabric dimensions
    fuzz at ``None`` (auto-size) because a random site count is either
    invalid or absurdly large, and ``place_iters`` fuzzes at small move
    budgets to keep cases cheap.  :data:`_PINNED_FIELDS` are excluded.
    """
    domain: Domain = {}
    for spec in config_fields():
        if spec.name in _PINNED_FIELDS:
            continue
        if spec.fuzz is not None:
            domain[spec.name] = tuple(spec.fuzz)
        elif spec.choices is not None:
            domain[spec.name] = tuple(spec.choices)
        elif spec.kind == "bool":
            domain[spec.name] = (False, True)
        else:
            domain[spec.name] = None
    return domain


def sample_config(rng: random.Random, domain: Optional[Domain] = None) -> FlowConfig:
    """Draw one valid :class:`FlowConfig` from ``domain``.

    Every combination of schema choices is a valid config (the schema has no
    forbidden pairs — don't-care combinations are canonicalized away
    instead), so sampling is a straight per-field draw; construction still
    validates, so a schema regression surfaces here immediately.
    """
    domain = domain if domain is not None else default_domain()
    values: Dict[str, object] = {}
    for name, choices in domain.items():
        if choices is None:
            values[name] = rng.randrange(SEED_DRAW_RANGE)
        else:
            values[name] = choices[rng.randrange(len(choices))]
    values["opt_validate"] = True
    values["map_validate"] = True
    return FlowConfig(**values)


def sample_points(
    n: int,
    seed: int,
    designs: Optional[Sequence[str]] = None,
    domain: Optional[Domain] = None,
) -> List["SweepPoint"]:
    """Sample ``n`` distinct fuzz cases, reproducibly from ``seed``.

    Cases are deduplicated on their canonical cache identity, so no two
    cases describe the same computation; if the (restricted) domain is
    smaller than ``n``, fewer cases are returned.
    """
    rng = random.Random(seed)
    names = tuple(designs) if designs else tuple(list_designs())
    domain = domain if domain is not None else default_domain()
    points: List[SweepPoint] = []
    seen: set = set()
    attempts = 0
    while len(points) < n and attempts < 50 * max(1, n):
        attempts += 1
        design = names[rng.randrange(len(names))]
        point = SweepPoint.from_config(design, sample_config(rng, domain))
        key = point.canonical().key()
        if key in seen:
            continue
        seen.add(key)
        points.append(point)
    return points


def case_seed(point: "SweepPoint") -> int:
    """Deterministic stimulus seed for one case, derived from its identity."""
    digest = hashlib.sha256(point.key().encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def check_point(
    point: "SweepPoint",
    mutation: Optional[RewritePass] = None,
    random_vector_count: int = 64,
    exhaustive_width_limit: int = 14,
) -> Dict[str, object]:
    """Run one fuzz case end to end; never raises.

    The case synthesizes the point through the staged flow, validates the
    netlist structurally and checks it against the design's reference
    expression.  ``mutation`` injects a (deliberately broken) rewrite pass
    through the :class:`~repro.opt.manager.PassManager` *without* the
    manager's own equivalence safety net — this is the subsystem's
    self-test: the differential check must flag the mutated netlist itself.
    """
    start = time.perf_counter()
    record: Dict[str, object] = {
        "label": "?",
        "point": None,
        "stimulus_seed": None,
        "ok": False,
        "validate_warnings": None,
        "equivalence": None,
        "error": None,
        "elapsed_s": 0.0,
    }
    try:
        # the identity fields live inside the guard too: a point whose
        # label/serialization raises must yield an error record, not crash
        # a pool worker (which would drop its telemetry with it)
        record["label"] = point.label()
        record["point"] = point.to_dict()
        record["stimulus_seed"] = case_seed(point)
        with obs.span("verify.case", case=record["label"]):
            record.update(_check_point_body(point, mutation,
                                            random_vector_count,
                                            exhaustive_width_limit))
    except Exception as exc:  # per-case capture, like sweep points
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["elapsed_s"] = time.perf_counter() - start
    return record


def _check_point_body(
    point: "SweepPoint",
    mutation: Optional[RewritePass],
    random_vector_count: int,
    exhaustive_width_limit: int,
) -> Dict[str, object]:
    """The raising core of one fuzz case: returns only the keys it computed."""
    record: Dict[str, object] = {}
    design = get_design(point.design)
    result = Flow(point.config()).run(design)
    if mutation is not None:
        PassManager(
            [mutation],
            max_iterations=1,
            check_equivalence=False,
            opt_level=0,
        ).run(result.netlist)
    record["validate_warnings"] = len(validate_netlist(result.netlist))
    report = check_equivalence(
        result.netlist,
        result.output_bus,
        design.expression,
        design.signals,
        output_width=result.output_width,
        random_vector_count=random_vector_count,
        exhaustive_width_limit=exhaustive_width_limit,
        seed=case_seed(point),
    )
    record["equivalence"] = {
        "equivalent": report.equivalent,
        "vectors_checked": report.vectors_checked,
        "exhaustive": report.exhaustive,
        "mismatches": report.mismatches[:3],
    }
    record["ok"] = report.equivalent
    if not report.equivalent:
        record["error"] = (
            f"netlist differs from the reference model "
            f"({len(report.mismatches)} mismatching vector(s) sampled)"
        )
    return record


def _fuzz_worker(point: "SweepPoint", trace: bool = False) -> Dict[str, object]:
    """Picklable pool-worker body (no mutation support across processes).

    When ``trace`` is set the case runs under its own in-process tracer and
    the record carries the picklable span/counter ``telemetry`` payload, so
    the parent sweep can :meth:`~repro.obs.Tracer.adopt` it into one merged
    timeline.
    """
    if not trace:
        return check_point(point)
    tracer = obs.Tracer()
    try:
        with obs.tracing(tracer):
            record = check_point(point)
    except Exception as exc:
        # check_point never raises by contract; if that contract is ever
        # broken the spans recorded up to the failure must still reach
        # the parent alongside the error record
        record = {
            "label": "?", "point": None, "stimulus_seed": None, "ok": False,
            "validate_warnings": None, "equivalence": None,
            "error": f"{type(exc).__name__}: {exc}", "elapsed_s": 0.0,
        }
    record["telemetry"] = {
        "spans": tracer.to_dicts(),
        "counters": dict(tracer.counters),
    }
    return record


def run_fuzz(
    points: Sequence["SweepPoint"],
    jobs: int = 1,
    mutation: Optional[RewritePass] = None,
    progress: Optional[Callable[[Dict[str, object], int, int], None]] = None,
) -> Tuple[List[Dict[str, object]], bool]:
    """Check every fuzz case, fanning out over the sweep worker pool.

    Returns ``(records, used_fallback)`` in input order.  A ``mutation``
    forces serial execution (the injected pass stays in-process, so tests
    can assert on the very object they handed in).
    """
    if mutation is not None or jobs <= 1:
        records: List[Dict[str, object]] = []
        for point in points:
            records.append(check_point(point, mutation=mutation))
            if progress is not None:
                progress(records[-1], len(records), len(points))
        return records, False
    tracer = obs.current_tracer()
    worker = partial(_fuzz_worker, trace=tracer is not None)
    results, used_fallback = parallel_map(
        worker, list(points), jobs=jobs, progress=progress
    )
    records = list(results)
    if tracer is not None:
        for record in records:
            telemetry = record.pop("telemetry", None)
            if telemetry:
                tracer.adopt(telemetry.get("spans", ()), telemetry.get("counters"))
    return records, used_fallback


# ---------------------------------------------------------------- CLI glue


def add_domain_options(parser: argparse.ArgumentParser) -> None:
    """Add schema-generated domain-restriction flags to the verify parser.

    Every sampled config field gets a flag reusing its sweep-axis spelling
    (``--methods``, ``--opt-levels``, tri-state ``--csd`` defaulting to
    ``both``...); the default is always the *full* domain.  Destinations are
    prefixed ``domain_`` so they never collide with the fuzzer's own
    ``--seed`` / ``--n`` options.
    """
    for spec in config_fields():
        if spec.name in _PINNED_FIELDS:
            continue
        flag = spec.axis_flag or spec.flag
        dest = f"domain_{spec.name}"
        if spec.kind == "bool":
            parser.add_argument(
                flag,
                dest=dest,
                choices=tuple(_BOOL_DOMAIN_VALUES),
                default="both",
                help=f"fuzz domain: {spec.help}",
            )
        elif spec.choices is not None:
            parser.add_argument(
                flag,
                dest=dest,
                nargs="+",
                type=int if spec.kind in ("int", "optional_int") else str,
                choices=spec.choices,
                default=list(spec.choices),
                metavar=spec.name.upper(),
                help=f"fuzz domain: {spec.help}",
            )
        else:
            default_text = (
                f"default: {spec.fuzz}"
                if spec.fuzz is not None
                else "default: drawn from the fuzzer rng"
            )
            parser.add_argument(
                flag,
                dest=dest,
                nargs="+",
                type=int,
                default=None,
                metavar=spec.name.upper(),
                help=f"fuzz domain: {spec.help} ({default_text})",
            )


def domain_from_args(args: argparse.Namespace) -> Domain:
    """Build the sampling domain from parsed domain-restriction flags."""
    domain = default_domain()
    for name in list(domain):
        value = getattr(args, f"domain_{name}", None)
        if value is None:
            continue
        if isinstance(value, str):
            domain[name] = _BOOL_DOMAIN_VALUES[value]
        else:
            domain[name] = tuple(value)
    return domain
