"""Verification subsystem: differential fuzzing + metamorphic properties.

The paper's claims rest on two things this package continuously tests:

* **correctness** — every synthesized netlist computes its design's
  reference expression (differential fuzzing over the whole
  :class:`~repro.api.config.FlowConfig` space, plus metamorphic properties
  linking related configurations);
* **metric stability** — the reported timing/power/area numbers stay inside
  tolerance bands pinned by a committed golden snapshot.

Everything is seeded and replayable, fans out over the exploration engine's
worker pool, and is driven either from ``repro-datapath verify`` or
programmatically::

    from repro.verify import run_verify, run_self_test

    report = run_verify(smoke=True, seed=0, jobs=4)
    assert report.ok, report.render()
    assert run_self_test()["ok"]      # the fuzzer catches a planted bug

The self-test (mutation testing) is part of the subsystem's contract: a
deliberately broken rewrite pass injected through the ``PassManager`` API
must be flagged as non-equivalent, or the whole verification stack is
considered broken.
"""

from repro.verify.fuzz import (
    add_domain_options,
    case_seed,
    check_point,
    default_domain,
    domain_from_args,
    run_fuzz,
    sample_config,
    sample_points,
)
from repro.verify.golden import (
    DEFAULT_GOLDEN_PATH,
    bless_golden,
    compare_to_golden,
    golden_points,
    load_golden,
    run_golden,
    run_golden_points,
)
from repro.verify.metamorphic import (
    METAMORPHIC_PROPERTIES,
    check_property,
    metamorphic_property,
    property_names,
    run_metamorphic,
)
from repro.verify.mutation import BrokenAndToOrPass, BrokenDropCarryPass
from repro.verify.report import VerifyReport, write_report
from repro.verify.runner import run_self_test, run_verify

__all__ = [
    "BrokenAndToOrPass",
    "BrokenDropCarryPass",
    "DEFAULT_GOLDEN_PATH",
    "METAMORPHIC_PROPERTIES",
    "VerifyReport",
    "add_domain_options",
    "bless_golden",
    "case_seed",
    "check_point",
    "check_property",
    "compare_to_golden",
    "default_domain",
    "domain_from_args",
    "golden_points",
    "load_golden",
    "metamorphic_property",
    "property_names",
    "run_fuzz",
    "run_golden",
    "run_golden_points",
    "run_metamorphic",
    "run_self_test",
    "run_verify",
    "sample_config",
    "sample_points",
    "write_report",
]
