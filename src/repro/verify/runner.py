"""Orchestration of one verification run: fuzz -> metamorphic -> golden.

:func:`run_verify` is the engine behind ``repro-datapath verify``: it
samples the fuzz cases, fans them (and the metamorphic checks) out over the
exploration engine's worker pool, runs the golden-metric regression set and
assembles everything into a :class:`~repro.verify.report.VerifyReport`.

:func:`run_self_test` is the subsystem's own mutation test: it injects a
deliberately broken rewrite pass through the ``PassManager`` API and demands
that the fuzzer flags every mutated netlist as non-equivalent — a
verification stack that cannot catch a planted bug must fail loudly, not
report green.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence

from repro import obs
from repro.obs import get_logger
from repro.opt.base import RewritePass
from repro.verify.fuzz import Domain, run_fuzz, sample_points
from repro.verify.golden import DEFAULT_GOLDEN_PATH, run_golden
from repro.verify.metamorphic import run_metamorphic
from repro.verify.mutation import BrokenAndToOrPass
from repro.verify.report import VerifyReport

#: the smoke preset: small designs (exhaustively checkable), few cases —
#: sized for a CI gate, not a soak run
SMOKE_DESIGNS = ("x2", "x2_plus_x_plus_y", "square_of_sum")
SMOKE_CASES = 6
SMOKE_METAMORPHIC_POINTS = 2

#: default depth of a full run
DEFAULT_CASES = 24
DEFAULT_METAMORPHIC_POINTS = 4

ProgressFn = Callable[[str, Dict[str, object], int, int], None]

log = get_logger("verify")


def _phase_progress(
    progress: Optional[ProgressFn], phase: str
) -> Optional[Callable[[Dict[str, object], int, int], None]]:
    if progress is None:
        return None

    def callback(record: Dict[str, object], done: int, total: int) -> None:
        progress(phase, record, done, total)

    return callback


def run_verify(
    designs: Optional[Sequence[str]] = None,
    n: int = DEFAULT_CASES,
    seed: int = 0,
    jobs: int = 1,
    domain: Optional[Domain] = None,
    metamorphic_points: Optional[int] = None,
    golden_path: Optional[str] = DEFAULT_GOLDEN_PATH,
    bless: bool = False,
    smoke: bool = False,
    mutation: Optional[RewritePass] = None,
    progress: Optional[ProgressFn] = None,
) -> VerifyReport:
    """Run the three verification phases and return the combined report.

    Parameters
    ----------
    designs / n / seed / domain:
        The fuzz-case sample (see :func:`repro.verify.fuzz.sample_points`).
    jobs:
        Worker processes for fuzz cases, metamorphic checks and the golden
        set (``<= 1`` runs serially).
    metamorphic_points:
        How many of the sampled cases also serve as metamorphic base cases
        (every registered property runs against each).
    golden_path / bless:
        Snapshot location and whether to rewrite it instead of comparing;
        ``golden_path=None`` skips the golden phase entirely.
    smoke:
        CI preset: restrict to :data:`SMOKE_DESIGNS` and cap the case
        counts (explicit ``designs`` still win).
    mutation:
        Inject a broken rewrite pass into every fuzz case (mutation
        testing; forces serial fuzzing).
    progress:
        Optional ``(phase, record, done, total)`` callback.
    """
    start = time.perf_counter()
    if smoke:
        designs = tuple(designs) if designs else SMOKE_DESIGNS
        n = min(n, SMOKE_CASES)
        if metamorphic_points is None:
            metamorphic_points = SMOKE_METAMORPHIC_POINTS
    if metamorphic_points is None:
        metamorphic_points = DEFAULT_METAMORPHIC_POINTS

    points = sample_points(n, seed, designs=designs, domain=domain)
    log.info("verify: fuzz phase (%d cases, jobs=%d)", len(points), max(1, jobs))
    with obs.span("verify.fuzz", cases=len(points), jobs=max(1, jobs)):
        fuzz_records, fuzz_fallback = run_fuzz(
            points,
            jobs=jobs,
            mutation=mutation,
            progress=_phase_progress(progress, "fuzz"),
        )

    base_points = points[: max(0, min(metamorphic_points, len(points)))]
    log.info("verify: metamorphic phase (%d base cases)", len(base_points))
    with obs.span("verify.metamorphic", base_cases=len(base_points)):
        meta_records, meta_fallback = run_metamorphic(
            base_points, jobs=jobs, progress=_phase_progress(progress, "metamorphic")
        )

    golden_record = None
    golden_fallback = False
    if golden_path is not None:
        log.info("verify: golden phase (%s)", golden_path)
        with obs.span("verify.golden", path=str(golden_path), bless=bless):
            golden_record = run_golden(golden_path, jobs=jobs, bless=bless)
        golden_fallback = bool(golden_record.get("used_fallback"))

    return VerifyReport(
        seed=seed,
        requested_cases=n,
        fuzz=fuzz_records,
        metamorphic=meta_records,
        golden=golden_record,
        jobs=max(1, jobs),
        used_fallback=fuzz_fallback or meta_fallback or golden_fallback,
        elapsed_s=time.perf_counter() - start,
    )


def run_self_test(
    seed: int = 0,
    n: int = 3,
    designs: Optional[Sequence[str]] = None,
    mutation: Optional[RewritePass] = None,
    domain: Optional[Domain] = None,
) -> Dict[str, object]:
    """Mutation-test the fuzzer: a broken pass must be flagged, case by case.

    Samples ``n`` cases over ``designs`` (default: the small, exhaustively
    checkable smoke designs), injects ``mutation`` (default:
    :class:`BrokenAndToOrPass`) via the ``PassManager`` and requires
    **every** case to come back non-equivalent.  The ``target_lib`` axis is
    pinned to ``"generic"`` regardless of ``domain``: the planted mutations
    rewrite the flow's FA/AND2 primitives, which a technology-mapped
    netlist no longer contains (mapped configurations are exercised by the
    regular fuzz phase and the ``map_equivalent`` metamorphic property).
    Returns a JSON-able record; ``ok`` means the planted bug was caught
    everywhere.  Mutated cases always run serially (the injected pass stays
    in-process).
    """
    from repro.verify.fuzz import default_domain

    mutation = mutation if mutation is not None else BrokenAndToOrPass()
    domain = dict(domain) if domain is not None else default_domain()
    domain["target_lib"] = ("generic",)
    points = sample_points(
        n, seed, designs=designs if designs else SMOKE_DESIGNS, domain=domain
    )
    records, _ = run_fuzz(points, mutation=mutation)
    flagged = [
        record
        for record in records
        if record["equivalence"] is not None
        and not record["equivalence"]["equivalent"]
    ]
    missed = [
        record
        for record in records
        if record["equivalence"] is not None and record["ok"]
    ]
    crashed = [record for record in records if record["equivalence"] is None]
    return {
        "mutation": mutation.name,
        "cases": len(records),
        "flagged": len(flagged),
        "missed": [record["label"] for record in missed],
        "crashed": [record["label"] for record in crashed],
        "ok": bool(records) and not missed and not crashed,
    }
