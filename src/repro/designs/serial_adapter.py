"""Serial-Adapter benchmark — a three-port serial adaptor of a ladder filter.

The paper lists "Serial-Adapter ... a 3-port serial adapter which is regularly
used in many ladder digital filter structures" with a 16-bit output.  In a
wave-digital ladder filter, an n-port serial adaptor needs n-1 multiplier
coefficients; for the three-port adaptor the reflected wave at port 3 has the
form

    b3 = a1 + a2 + a3 - g1*a1 - g2*a2

where a1..a3 are the incident waves and g1, g2 the adaptor coefficients.  We
use 8-bit waves and coefficients with a 16-bit output.  The incident waves
arrive with a skewed profile (they come from neighbouring adaptors of the
ladder), which is what gives the arrival-driven allocation something to
exploit — and is also why the paper observes only a small gain over CSA_OPT on
this regular structure.
"""

from __future__ import annotations

from repro.designs.base import DatapathDesign
from repro.expr.ast import Var
from repro.expr.signals import SignalSpec


def serial_adapter() -> DatapathDesign:
    """Three-port serial adaptor reflected-wave computation (16-bit output)."""
    a1, a2, a3 = Var("a1"), Var("a2"), Var("a3")
    g1, g2 = Var("g1"), Var("g2")
    expression = a1 + a2 + a3 - g1 * a1 - g2 * a2

    signals = {
        "a1": SignalSpec("a1", 8, arrival=0.2),
        "a2": SignalSpec("a2", 8),
        "a3": SignalSpec("a3", 8, arrival=0.4),
        "g1": SignalSpec("g1", 8),
        "g2": SignalSpec("g2", 8),
    }
    return DatapathDesign(
        name="serial_adapter",
        title="Serial-Adapter (3-port serial adaptor)",
        expression=expression,
        signals=signals,
        output_width=16,
        description="Wave-digital three-port serial adaptor arithmetic.",
        paper_row="Serial-Adapter",
    )
