"""IDCT benchmark — one output of an 8-point inverse DCT row transform.

The paper lists "IDCT" with a 32-bit output.  One output sample of an 8-point
1-D IDCT is the dot product of eight cosine coefficients with the eight input
spectral coefficients:

    y = sum_{k=0..7} c_k * s_k

We use 12-bit cosine coefficients (as fixed-point IDCT implementations do) and
16-bit spectral inputs, accumulated into a 32-bit result.  The high-frequency
spectral coefficients arrive later than the low-frequency ones — in a real
decoder they come out of the preceding dequantization logic last.
"""

from __future__ import annotations

from repro.designs.base import DatapathDesign
from repro.expr.ast import Expression, Var
from repro.expr.signals import SignalSpec


def idct_dot_product() -> DatapathDesign:
    """8-term IDCT dot product (32-bit output)."""
    expression: Expression = Var("c0") * Var("s0")
    for k in range(1, 8):
        expression = expression + Var(f"c{k}") * Var(f"s{k}")

    signals = {}
    for k in range(8):
        signals[f"c{k}"] = SignalSpec(f"c{k}", 12)
        signals[f"s{k}"] = SignalSpec(f"s{k}", 16, arrival=0.1 * k)
    return DatapathDesign(
        name="idct",
        title="IDCT (8-point dot product)",
        expression=expression,
        signals=signals,
        output_width=32,
        description="Eight 12x16 products accumulated into a 32-bit result.",
        paper_row="IDCT",
    )
