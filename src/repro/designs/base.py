"""The :class:`DatapathDesign` record describing one benchmark design."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.errors import DesignError
from repro.expr.ast import Expression
from repro.expr.signals import SignalSpec


@dataclass
class DatapathDesign:
    """One benchmark design: an expression plus its input characteristics.

    Attributes
    ----------
    name:
        Registry key (snake_case).
    title:
        Display name matching the paper's tables (e.g. ``"X2 + X + Y"``).
    expression:
        The arithmetic expression to synthesize.
    signals:
        Per-operand :class:`SignalSpec` (width, arrival profile, probability).
    output_width:
        Result width W; the design computes the expression modulo ``2**W``.
    description:
        Short free-form description.
    paper_row:
        Name of the corresponding row in the paper's tables, if any.
    """

    name: str
    title: str
    expression: Expression
    signals: Dict[str, SignalSpec]
    output_width: int
    description: str = ""
    paper_row: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.output_width <= 0:
            raise DesignError(f"design {self.name!r}: output width must be positive")
        missing = [v for v in self.expression.variables() if v not in self.signals]
        if missing:
            raise DesignError(
                f"design {self.name!r}: no SignalSpec for variables {missing}"
            )

    # ------------------------------------------------------------------ views
    def variables(self) -> List[str]:
        """Variable names used by the expression, in first-appearance order."""
        return self.expression.variables()

    def total_input_bits(self) -> int:
        """Total number of primary-input bits."""
        return sum(self.signals[v].width for v in self.variables())

    def with_signals(self, signals: Dict[str, SignalSpec]) -> "DatapathDesign":
        """Copy of the design with different signal specifications."""
        return replace(self, signals=signals)

    def summary(self) -> str:
        """One-line summary used by the CLI's ``list-designs`` command."""
        widths = ", ".join(
            f"{v}:{self.signals[v].width}b" for v in self.variables()
        )
        return f"{self.name:<22} {self.title:<28} out={self.output_width}b inputs=({widths})"
