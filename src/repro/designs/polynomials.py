"""Polynomial benchmark designs — the first five rows of Table 1.

The bit-widths and non-zero input arrival times are those stated in the first
column of Table 1 of the paper; where the paper gives no arrival time the
inputs arrive at t=0.
"""

from __future__ import annotations

from repro.designs.base import DatapathDesign
from repro.expr.ast import Var
from repro.expr.signals import SignalSpec


def x_squared() -> DatapathDesign:
    """X**2 with a 3-bit X (Table 1, row 1)."""
    x = Var("x")
    return DatapathDesign(
        name="x2",
        title="X^2 (X: 3-bit)",
        expression=x * x,
        signals={"x": SignalSpec("x", 3)},
        output_width=6,
        description="Square of a 3-bit operand.",
        paper_row="X2",
    )


def x_cubed() -> DatapathDesign:
    """X**3 with a 4-bit X (Table 1, row 2)."""
    x = Var("x")
    return DatapathDesign(
        name="x3",
        title="X^3 (X: 4-bit)",
        expression=x * x * x,
        signals={"x": SignalSpec("x", 4)},
        output_width=12,
        description="Cube of a 4-bit operand (a three-operand bit product).",
        paper_row="X3",
    )


def x2_plus_x_plus_y() -> DatapathDesign:
    """X**2 + X + Y with 8-bit operands, X arriving at 0.7 ns (Table 1, row 3)."""
    x, y = Var("x"), Var("y")
    return DatapathDesign(
        name="x2_plus_x_plus_y",
        title="X^2 + X + Y",
        expression=x * x + x + y,
        signals={
            "x": SignalSpec("x", 8, arrival=0.7),
            "y": SignalSpec("y", 8),
        },
        output_width=16,
        description="Quadratic polynomial with a late-arriving X operand.",
        paper_row="X2 + X + Y",
    )


def square_of_sum() -> DatapathDesign:
    """x^2 + 2xy + y^2 + 2x + 2y + 1 with 8-bit x, y at 1.0 ns (Table 1, row 4)."""
    x, y = Var("x"), Var("y")
    expression = x * x + 2 * x * y + y * y + 2 * x + 2 * y + 1
    return DatapathDesign(
        name="square_of_sum",
        title="x^2 + 2xy + y^2 + 2x + 2y + 1",
        expression=expression,
        signals={
            "x": SignalSpec("x", 8, arrival=1.0),
            "y": SignalSpec("y", 8, arrival=1.0),
        },
        output_width=17,
        description="Expansion of (x + y + 1)^2 with uniformly late inputs.",
        paper_row="x2 + 2xy + y2 + 2x + 2y + 1",
    )


def mixed_products() -> DatapathDesign:
    """x + y - z + x*y - y*z + 10 with 8-bit operands (Table 1, row 5)."""
    x, y, z = Var("x"), Var("y"), Var("z")
    expression = x + y - z + x * y - y * z + 10
    return DatapathDesign(
        name="mixed_products",
        title="x + y - z + x*y - y*z + 10",
        expression=expression,
        signals={
            "x": SignalSpec("x", 8),
            "y": SignalSpec("y", 8),
            "z": SignalSpec("z", 8),
        },
        output_width=17,
        description="Mixed additions, subtractions and products with a constant.",
        paper_row="x + y - z + x.y - y.z + 10",
    )
