"""IIR benchmark — the arithmetic part of a second-order (biquad) IIR filter.

The paper only states "IIR is the arithmetic part of the 2nd-order iir filter
design" with a 16-bit output.  The standard direct-form-I biquad arithmetic is

    y[n] = b0*x[n] + b1*x[n-1] + b2*x[n-2] - a1*y[n-1] - a2*y[n-2]

with 8-bit samples and coefficients, which gives a 16-bit accumulator — that
is what this design implements.  The current input sample ``x0`` is given a
late arrival (it comes from an ADC / preceding pipeline logic), while the
delayed samples and coefficients come straight from registers at t=0; this
uneven profile is the situation FA_AOT is designed to exploit.
"""

from __future__ import annotations

from repro.designs.base import DatapathDesign
from repro.expr.ast import Var
from repro.expr.signals import SignalSpec


def iir_biquad() -> DatapathDesign:
    """Second-order IIR filter arithmetic (16-bit output)."""
    b0, b1, b2 = Var("b0"), Var("b1"), Var("b2")
    a1, a2 = Var("a1"), Var("a2")
    x0, x1, x2 = Var("x0"), Var("x1"), Var("x2")
    y1, y2 = Var("y1"), Var("y2")
    expression = b0 * x0 + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2

    signals = {
        "b0": SignalSpec("b0", 8),
        "b1": SignalSpec("b1", 8),
        "b2": SignalSpec("b2", 8),
        "a1": SignalSpec("a1", 8),
        "a2": SignalSpec("a2", 8),
        # The live sample arrives late; higher-order bits later still (they
        # come out of a preceding carry-propagate stage LSB-first).
        "x0": SignalSpec("x0", 8, arrival=[0.6 + 0.05 * i for i in range(8)]),
        "x1": SignalSpec("x1", 8),
        "x2": SignalSpec("x2", 8),
        "y1": SignalSpec("y1", 8, arrival=0.3),
        "y2": SignalSpec("y2", 8),
    }
    return DatapathDesign(
        name="iir",
        title="IIR (2nd-order biquad)",
        expression=expression,
        signals=signals,
        output_width=16,
        description="Direct-form-I biquad accumulator with a late input sample.",
        paper_row="IIR",
    )
