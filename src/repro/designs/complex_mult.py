"""Complex benchmark — the arithmetic part of a complex-number multiplication.

The paper lists "Complx ... the arithmetic part of complex number calculation"
with a 32-bit output.  We implement the real part of (a + jb) * (c + jd) plus
an accumulator input, which is the datapath found in complex MAC units:

    re = a*c - b*d + acc

with 16-bit operands and a 32-bit accumulator value.
"""

from __future__ import annotations

from repro.designs.base import DatapathDesign
from repro.expr.ast import Var
from repro.expr.signals import SignalSpec


def complex_mac_real() -> DatapathDesign:
    """Real part of a complex multiply-accumulate (32-bit output)."""
    a, b, c, d, acc = Var("a"), Var("b"), Var("c"), Var("d"), Var("acc")
    expression = a * c - b * d + acc

    signals = {
        "a": SignalSpec("a", 16),
        "b": SignalSpec("b", 16),
        "c": SignalSpec("c", 16, arrival=0.5),
        "d": SignalSpec("d", 16, arrival=0.5),
        "acc": SignalSpec("acc", 32, arrival=[0.02 * i for i in range(32)]),
    }
    return DatapathDesign(
        name="complex",
        title="Complex (a*c - b*d + acc)",
        expression=expression,
        signals=signals,
        output_width=32,
        description="Real part of a complex multiply-accumulate.",
        paper_row="Complex",
    )
