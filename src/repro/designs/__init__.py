"""Benchmark datapath designs used in the paper's evaluation."""

from repro.designs.base import DatapathDesign
from repro.designs.registry import (
    TABLE1_DESIGN_NAMES,
    TABLE2_DESIGN_NAMES,
    get_design,
    list_designs,
    with_random_probabilities,
)

__all__ = [
    "DatapathDesign",
    "TABLE1_DESIGN_NAMES",
    "TABLE2_DESIGN_NAMES",
    "get_design",
    "list_designs",
    "with_random_probabilities",
]
