"""Kalman benchmark — the state-vector update of a Kalman filter.

The paper describes "the state vector computation part of the kalman filter
design" with a 32-bit output.  We implement one element of the predicted state
vector

    x1' = f11*x1 + f12*x2 + b1*u + k1*e

with 16-bit state entries, coefficients and inputs (32-bit products).  The
innovation term ``e`` arrives late because it is produced by the measurement
pipeline; the register-resident state and coefficients arrive at t=0.
"""

from __future__ import annotations

from repro.designs.base import DatapathDesign
from repro.expr.ast import Var
from repro.expr.signals import SignalSpec


def kalman_state_update() -> DatapathDesign:
    """Kalman filter state-vector update element (32-bit output)."""
    f11, f12 = Var("f11"), Var("f12")
    b1, k1 = Var("b1"), Var("k1")
    x1, x2, u, e = Var("x1"), Var("x2"), Var("u"), Var("e")
    expression = f11 * x1 + f12 * x2 + b1 * u + k1 * e

    signals = {
        "f11": SignalSpec("f11", 16),
        "f12": SignalSpec("f12", 16),
        "b1": SignalSpec("b1", 16),
        "k1": SignalSpec("k1", 16),
        "x1": SignalSpec("x1", 16),
        "x2": SignalSpec("x2", 16),
        "u": SignalSpec("u", 16, arrival=0.4),
        "e": SignalSpec("e", 16, arrival=[0.8 + 0.03 * i for i in range(16)]),
    }
    return DatapathDesign(
        name="kalman",
        title="Kalman (state vector update)",
        expression=expression,
        signals=signals,
        output_width=32,
        description="Sum of four 16x16 products with a late innovation term.",
        paper_row="Kalman",
    )
