"""Design registry: all benchmark designs, addressable by name.

``TABLE1_DESIGN_NAMES`` and ``TABLE2_DESIGN_NAMES`` list the designs in the
order the paper's tables report them, so the benchmark harnesses can print
rows that line up with the published tables.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.designs.base import DatapathDesign
from repro.designs.complex_mult import complex_mac_real
from repro.designs.idct import idct_dot_product
from repro.designs.iir import iir_biquad
from repro.designs.kalman import kalman_state_update
from repro.designs.polynomials import (
    mixed_products,
    square_of_sum,
    x2_plus_x_plus_y,
    x_cubed,
    x_squared,
)
from repro.designs.serial_adapter import serial_adapter
from repro.errors import DesignError
from repro.expr.signals import SignalSpec

_FACTORIES: Dict[str, Callable[[], DatapathDesign]] = {
    "x2": x_squared,
    "x3": x_cubed,
    "x2_plus_x_plus_y": x2_plus_x_plus_y,
    "square_of_sum": square_of_sum,
    "mixed_products": mixed_products,
    "iir": iir_biquad,
    "kalman": kalman_state_update,
    "idct": idct_dot_product,
    "complex": complex_mac_real,
    "serial_adapter": serial_adapter,
}

#: Table 1 rows, in the paper's order.
TABLE1_DESIGN_NAMES: List[str] = [
    "x2",
    "x3",
    "x2_plus_x_plus_y",
    "square_of_sum",
    "mixed_products",
    "iir",
    "kalman",
    "idct",
    "complex",
    "serial_adapter",
]

#: Table 2 rows, in the paper's order.
TABLE2_DESIGN_NAMES: List[str] = ["iir", "kalman", "idct", "complex", "serial_adapter"]


def list_designs() -> List[str]:
    """Names of all registered designs."""
    return list(_FACTORIES)


def get_design(name: str) -> DatapathDesign:
    """Instantiate the design registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise DesignError(
            f"unknown design {name!r}; available designs: {', '.join(sorted(_FACTORIES))}"
        ) from exc
    return factory()


def with_random_probabilities(design: DatapathDesign, seed: int = 2000) -> DatapathDesign:
    """Copy of ``design`` with random per-bit input signal probabilities.

    Table 2 of the paper uses "random signal probabilities for the inputs of
    the designs"; this helper reproduces that protocol deterministically from
    a seed so the power benchmark is repeatable.
    """
    rng = random.Random(f"{design.name}-{seed}")
    signals = {}
    for name, spec in design.signals.items():
        probabilities = [round(rng.uniform(0.05, 0.95), 3) for _ in range(spec.width)]
        signals[name] = SignalSpec(name, spec.width, spec.arrival, probabilities)
    return design.with_signals(signals)
