"""Equivalence checking: synthesized netlist vs. the expression's semantics.

Every synthesized netlist must compute ``expression(inputs) mod 2**W`` on its
output bus.  For small total input widths the check is exhaustive; otherwise a
configurable number of random vectors is used.  This is the workhorse behind
the "functional equivalence" invariant of DESIGN.md and is run by the tests
for every allocation method and every benchmark design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.errors import SimulationError
from repro.expr.ast import Expression
from repro.expr.signals import SignalSpec
from repro.netlist.core import Bus, Netlist
from repro.sim.evaluator import evaluate_vectors
from repro.sim.vectors import exhaustive_vectors, random_vectors, total_input_width


@dataclass
class EquivalenceReport:
    """Outcome of an equivalence check."""

    equivalent: bool
    vectors_checked: int
    exhaustive: bool
    mismatches: List[Dict[str, int]] = field(default_factory=list)

    def assert_ok(self) -> None:
        """Raise :class:`SimulationError` when the check failed."""
        if not self.equivalent:
            example = self.mismatches[0] if self.mismatches else {}
            raise SimulationError(
                f"netlist is not equivalent to its expression; first mismatch: {example}"
            )


def check_equivalence(
    netlist: Netlist,
    output_bus: Bus,
    expression: Expression,
    signals: Mapping[str, SignalSpec],
    output_width: Optional[int] = None,
    random_vector_count: int = 64,
    exhaustive_width_limit: int = 14,
    seed: int = 2000,
    max_mismatches: int = 5,
) -> EquivalenceReport:
    """Check that the netlist output equals the expression modulo 2**W.

    ``exhaustive_width_limit`` bounds the total input width for which every
    combination is tried; larger designs fall back to random vectors.
    """
    width = output_width if output_width is not None else output_bus.width
    modulo = 1 << width

    if total_input_width(signals) <= exhaustive_width_limit:
        vectors = list(exhaustive_vectors(signals))
        exhaustive = True
    else:
        vectors = random_vectors(signals, random_vector_count, seed=seed)
        exhaustive = False

    # all vectors are evaluated in one bit-parallel batch (every cell is
    # visited once for the whole vector set), then compared per vector
    produced_values = evaluate_vectors(netlist, vectors).bus_values(output_bus)

    mismatches: List[Dict[str, int]] = []
    for vector, produced_raw in zip(vectors, produced_values):
        produced = produced_raw % modulo
        expected = expression.evaluate(vector) % modulo
        if produced != expected:
            record = dict(vector)
            record["expected"] = expected
            record["produced"] = produced
            mismatches.append(record)
            if len(mismatches) >= max_mismatches:
                break

    return EquivalenceReport(
        equivalent=not mismatches,
        vectors_checked=len(vectors),
        exhaustive=exhaustive,
        mismatches=mismatches,
    )
