"""Input-vector generation for simulation-based checks."""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Mapping

from repro.expr.signals import SignalSpec


def random_vectors(
    signals: Mapping[str, SignalSpec],
    count: int,
    seed: int,
    respect_probabilities: bool = False,
) -> List[Dict[str, int]]:
    """Generate ``count`` random input vectors (one integer per operand).

    ``seed`` is mandatory: every stochastic consumer (equivalence sampling,
    empirical switching, the fuzzer) must name its seed explicitly so each
    run is reproducible — there is deliberately no "fresh entropy" default.

    With ``respect_probabilities`` each bit is drawn according to its
    :class:`SignalSpec` probability — this is what the empirical switching
    estimator uses; otherwise values are uniform over the operand range.
    """
    rng = random.Random(seed)
    vectors: List[Dict[str, int]] = []
    for _ in range(count):
        vector: Dict[str, int] = {}
        for name, spec in signals.items():
            if respect_probabilities:
                value = 0
                for bit in range(spec.width):
                    if rng.random() < spec.probability_of(bit):
                        value |= 1 << bit
            else:
                value = rng.randrange(1 << spec.width)
            vector[name] = value
        vectors.append(vector)
    return vectors


def exhaustive_vectors(signals: Mapping[str, SignalSpec]) -> Iterator[Dict[str, int]]:
    """Iterate over every input combination (use only for small total widths)."""
    names = list(signals)
    ranges = [range(1 << signals[name].width) for name in names]
    for combination in itertools.product(*ranges):
        yield dict(zip(names, combination))


def total_input_width(signals: Mapping[str, SignalSpec]) -> int:
    """Sum of operand widths — used to decide exhaustive vs random checking."""
    return sum(spec.width for spec in signals.values())
