"""Simulation-based (empirical) switching-activity estimation.

This provides the measured counterpart of the probabilistic model in
:mod:`repro.power`: a stream of random input vectors (drawn according to the
per-bit input probabilities) is simulated, toggles on every net are counted,
and the per-net toggle rate is reported.  Under the zero-delay model the
toggle rate of a net converges to ``2 p (1-p)`` for temporally independent
vectors; the tests use this to validate the probability propagation on
circuits without reconvergent fanout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.expr.signals import SignalSpec
from repro.netlist.core import Netlist
from repro.sim.evaluator import evaluate_vectors
from repro.sim.vectors import random_vectors


@dataclass
class EmpiricalSwitching:
    """Per-net toggle statistics from vector simulation."""

    vectors_simulated: int
    toggle_rate: Dict[str, float] = field(default_factory=dict)
    one_probability: Dict[str, float] = field(default_factory=dict)

    def rate_of(self, net_name: str) -> float:
        """Fraction of consecutive vector pairs on which the net toggled."""
        return self.toggle_rate.get(net_name, 0.0)

    def probability_of(self, net_name: str) -> float:
        """Empirical probability that the net is 1."""
        return self.one_probability.get(net_name, 0.0)


def empirical_switching(
    netlist: Netlist,
    signals: Mapping[str, SignalSpec],
    vector_count: int = 256,
    seed: int = 7,
) -> EmpiricalSwitching:
    """Simulate random vectors and measure per-net toggle rates.

    ``seed`` drives the vector stream and is an ``int`` (never ``None``) so
    repeated estimates over the same netlist are bit-identical.

    All vectors are evaluated in one bit-parallel batch; per-net statistics
    then reduce to popcounts on the packed value words — ones are set bits,
    toggles are set bits of ``packed ^ (packed >> 1)`` over consecutive
    vector pairs.
    """
    vectors = random_vectors(
        signals, vector_count, seed=seed, respect_probabilities=True
    )
    batch = evaluate_vectors(netlist, vectors)

    pairs = max(1, len(vectors) - 1)
    count = max(1, len(vectors))
    pair_mask = (1 << max(0, len(vectors) - 1)) - 1
    toggle_rate: Dict[str, float] = {}
    one_probability: Dict[str, float] = {}
    for name, packed in batch.values.items():
        one_probability[name] = bin(packed).count("1") / count
        toggle_rate[name] = bin((packed ^ (packed >> 1)) & pair_mask).count("1") / pairs

    return EmpiricalSwitching(
        vectors_simulated=len(vectors),
        toggle_rate=toggle_rate,
        one_probability=one_probability,
    )
