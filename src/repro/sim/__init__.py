"""Bit-true functional simulation and equivalence checking."""

from repro.sim.evaluator import (
    BatchValues,
    bus_value,
    evaluate_netlist,
    evaluate_vectors,
    set_bus_value,
)
from repro.sim.program import SimProgram, cached_program, compile_netlist_program
from repro.sim.vectors import exhaustive_vectors, random_vectors
from repro.sim.equivalence import EquivalenceReport, check_equivalence
from repro.sim.toggles import empirical_switching

__all__ = [
    "BatchValues",
    "bus_value",
    "evaluate_netlist",
    "evaluate_vectors",
    "set_bus_value",
    "SimProgram",
    "cached_program",
    "compile_netlist_program",
    "exhaustive_vectors",
    "random_vectors",
    "EquivalenceReport",
    "check_equivalence",
    "empirical_switching",
]
