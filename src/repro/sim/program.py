"""Compiled bit-parallel simulation programs.

:func:`compile_netlist_program` lowers a netlist's topological cell order
into a flat straight-line program over an integer value array: every net is
assigned a slot, and every cell becomes one instruction — ``(cell type,
input slots, output slots)`` — paired with a closure that applies the
cell's packed boolean semantics (the same word-parallel expressions as
``_evaluate_cell_packed``) directly to the array.  The program is built
once per netlist *generation* and replayed for every chunk of an
equivalence check or every batch of an empirical-switching run,
eliminating the per-chunk topological re-sort, per-cell port-dict lookups,
and 16-way type dispatch that used to dominate the packed evaluator.
Threaded closures are used instead of ``exec``-generated source because
building them is ~50x cheaper than compiling equivalent Python text while
replaying within a few percent — single-replay callers (one random-stimulus
chunk) stay fast, multi-chunk callers amortize either way.

Cache correctness is structural, not conventional: :func:`cached_program`
keys the memo on :attr:`Netlist.generation`, which every structural
mutation bumps, so a stale program can never be replayed against a
rewritten netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro import obs
from repro.errors import SimulationError
from repro.netlist.cells import CellType, cell_input_ports, cell_output_ports
from repro.netlist.core import Netlist

_OpFn = Callable[[List[int], int], None]


def _op_fa(ins: Tuple[int, ...], outs: Tuple[int, ...]) -> _OpFn:
    a, b, cin = ins
    s, co = outs

    def op(v: List[int], m: int) -> None:
        t = v[a] ^ v[b]
        v[s] = t ^ v[cin]
        v[co] = (v[a] & v[b]) | (v[cin] & t)

    return op


def _op_ha(ins: Tuple[int, ...], outs: Tuple[int, ...]) -> _OpFn:
    a, b = ins
    s, co = outs

    def op(v: List[int], m: int) -> None:
        v[s] = v[a] ^ v[b]
        v[co] = v[a] & v[b]

    return op


def _op_and2(ins, outs):
    (a, b), (y,) = ins, outs

    def op(v, m):
        v[y] = v[a] & v[b]

    return op


def _op_nand2(ins, outs):
    (a, b), (y,) = ins, outs

    def op(v, m):
        v[y] = m ^ (v[a] & v[b])

    return op


def _op_or2(ins, outs):
    (a, b), (y,) = ins, outs

    def op(v, m):
        v[y] = v[a] | v[b]

    return op


def _op_nor2(ins, outs):
    (a, b), (y,) = ins, outs

    def op(v, m):
        v[y] = m ^ (v[a] | v[b])

    return op


def _op_xor2(ins, outs):
    (a, b), (y,) = ins, outs

    def op(v, m):
        v[y] = v[a] ^ v[b]

    return op


def _op_xnor2(ins, outs):
    (a, b), (y,) = ins, outs

    def op(v, m):
        v[y] = m ^ (v[a] ^ v[b])

    return op


def _op_not(ins, outs):
    (a,), (y,) = ins, outs

    def op(v, m):
        v[y] = m ^ v[a]

    return op


def _op_buf(ins, outs):
    (a,), (y,) = ins, outs

    def op(v, m):
        v[y] = v[a]

    return op


def _op_mux2(ins, outs):
    (a, b, sel), (y,) = ins, outs

    def op(v, m):
        s = v[sel]
        v[y] = (v[b] & s) | (v[a] & (m ^ s))

    return op


def _op_aoi21(ins, outs):
    (a, b, c), (y,) = ins, outs

    def op(v, m):
        v[y] = m ^ ((v[a] & v[b]) | v[c])

    return op


def _op_oai21(ins, outs):
    (a, b, c), (y,) = ins, outs

    def op(v, m):
        v[y] = m ^ ((v[a] | v[b]) & v[c])

    return op


def _op_aoi22(ins, outs):
    (a, b, c, d), (y,) = ins, outs

    def op(v, m):
        v[y] = m ^ ((v[a] & v[b]) | (v[c] & v[d]))

    return op


def _op_xor3(ins, outs):
    (a, b, c), (y,) = ins, outs

    def op(v, m):
        v[y] = v[a] ^ v[b] ^ v[c]

    return op


def _op_maj3(ins, outs):
    (a, b, c), (y,) = ins, outs

    def op(v, m):
        va, vb = v[a], v[b]
        v[y] = (va & vb) | (v[c] & (va | vb))

    return op


#: per cell type: closure factory binding slot indices into a packed op
_OP_FACTORIES: Dict[CellType, Callable[..., _OpFn]] = {
    CellType.FA: _op_fa,
    CellType.HA: _op_ha,
    CellType.AND2: _op_and2,
    CellType.NAND2: _op_nand2,
    CellType.OR2: _op_or2,
    CellType.NOR2: _op_nor2,
    CellType.XOR2: _op_xor2,
    CellType.XNOR2: _op_xnor2,
    CellType.NOT: _op_not,
    CellType.BUF: _op_buf,
    CellType.MUX2: _op_mux2,
    CellType.AOI21: _op_aoi21,
    CellType.OAI21: _op_oai21,
    CellType.AOI22: _op_aoi22,
    CellType.XOR3: _op_xor3,
    CellType.MAJ3: _op_maj3,
}


@dataclass
class SimProgram:
    """A netlist lowered to a replayable straight-line packed program.

    ``slot_of`` maps every valued net (primary inputs, constants, cell
    outputs) to its index in the value array; ``instructions`` records, per
    cell in topological order, ``(cell_type.value, input_slots,
    output_slots)`` — a stable structural fingerprint that lets tests pin
    compile determinism byte-exactly (see :attr:`source`).
    """

    netlist_name: str
    generation: int
    slot_of: Dict[str, int]
    pi_slots: Tuple[Tuple[str, int], ...]
    const_slots: Tuple[Tuple[int, int], ...]  # (slot, constant bit)
    instructions: Tuple[Tuple[str, Tuple[int, ...], Tuple[int, ...]], ...]
    _ops: Tuple[_OpFn, ...] = field(repr=False, compare=False, default=())

    @property
    def n_slots(self) -> int:
        return len(self.slot_of)

    @property
    def source(self) -> str:
        """Pseudo-source rendering of the program (one line per cell).

        Purely a human-readable / byte-exact-comparison view — replay runs
        the threaded closures, not this text.
        """
        lines = [f"# sim program for {self.netlist_name!r}"]
        for name, slot in self.pi_slots:
            lines.append(f"v[{slot}] = input {name!r}")
        for slot, bit in self.const_slots:
            lines.append(f"v[{slot}] = const {bit}")
        for op_name, ins, outs in self.instructions:
            lines.append(
                f"v[{','.join(map(str, outs))}] = "
                f"{op_name}(v[{','.join(map(str, ins))}])"
            )
        return "\n".join(lines) + "\n"

    def run_packed(self, inputs: Mapping[str, int], mask: int) -> List[int]:
        """Replay the program on packed input words; returns the slot array.

        ``inputs`` maps every primary-input net name to one integer whose
        bit ``k`` is that input's value in vector ``k``; ``mask`` has one
        bit set per vector.  Extra keys are ignored (callers validate input
        names); missing primary inputs raise :class:`SimulationError`.
        """
        v = [0] * len(self.slot_of)
        for slot, bit in self.const_slots:
            v[slot] = mask if bit else 0
        try:
            for name, slot in self.pi_slots:
                v[slot] = inputs[name] & mask
        except KeyError:
            missing = [name for name, _ in self.pi_slots if name not in inputs]
            raise SimulationError(
                f"missing values for {len(missing)} primary inputs "
                f"(e.g. {missing[:5]})"
            ) from None
        for op in self._ops:
            op(v, mask)
        return v

    def values_dict(self, slots: List[int]) -> Dict[str, int]:
        """Name-keyed view of a slot array returned by :meth:`run_packed`."""
        return {name: slots[slot] for name, slot in self.slot_of.items()}


def compile_netlist_program(netlist: Netlist) -> SimProgram:
    """Lower ``netlist`` into a :class:`SimProgram`.

    Slot assignment is deterministic — primary inputs in declaration order,
    then constant nets, then cell outputs in topological order — so
    compiling a structurally identical netlist always yields identical
    ``instructions`` (and :attr:`SimProgram.source`).  A cell input net
    that is neither a primary input, a constant, nor driven by an earlier
    cell is floating; that is diagnosed here, at compile time, with the
    same message the interpreted sweep used to raise mid-evaluation.
    """
    slot_of: Dict[str, int] = {}
    pi_slots: List[Tuple[str, int]] = []
    const_slots: List[Tuple[int, int]] = []

    for net in netlist.primary_inputs:
        slot_of[net.name] = len(slot_of)
        pi_slots.append((net.name, slot_of[net.name]))
    for net in netlist.nets.values():
        if net.is_constant and net.name not in slot_of:
            slot_of[net.name] = len(slot_of)
            const_slots.append((slot_of[net.name], int(net.const_value or 0)))

    instructions: List[Tuple[str, Tuple[int, ...], Tuple[int, ...]]] = []
    ops: List[_OpFn] = []
    for cell in netlist.topological_cells():
        in_slots: List[int] = []
        for port in cell_input_ports(cell.cell_type):
            net = cell.inputs[port]
            slot = slot_of.get(net.name)
            if slot is None:
                raise SimulationError(
                    f"net {net.name!r} used by {cell.name!r} has no value"
                )
            in_slots.append(slot)
        out_slots: List[int] = []
        for port in cell_output_ports(cell.cell_type):
            net = cell.outputs[port]
            slot_of[net.name] = len(slot_of)
            out_slots.append(slot_of[net.name])
        ins, outs = tuple(in_slots), tuple(out_slots)
        instructions.append((cell.cell_type.value, ins, outs))
        ops.append(_OP_FACTORIES[cell.cell_type](ins, outs))

    return SimProgram(
        netlist_name=netlist.name,
        generation=netlist.generation,
        slot_of=slot_of,
        pi_slots=tuple(pi_slots),
        const_slots=tuple(const_slots),
        instructions=tuple(instructions),
        _ops=tuple(ops),
    )


def cached_program(netlist: Netlist) -> SimProgram:
    """The netlist's compiled program, recompiling only after mutations.

    The program is memoized on the netlist object and keyed by its
    :attr:`~Netlist.generation`; any structural mutation bumps the counter
    and forces a fresh compile on next use.  Emits ``sim.program_cache_hits``
    / ``sim.program_compiles`` obs counters so benchmarks can assert the
    compile cost is amortized across replays.
    """
    program = getattr(netlist, "_sim_program", None)
    if program is not None and program.generation == netlist.generation:
        obs.counter("sim.program_cache_hits")
        return program
    program = compile_netlist_program(netlist)
    netlist._sim_program = program
    obs.counter("sim.program_compiles")
    return program
