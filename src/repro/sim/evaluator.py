"""Bit-true evaluation of a netlist on concrete input values.

Two evaluation modes are provided:

* :func:`evaluate_netlist` — one vector at a time, dispatching through the
  cell library's boolean semantics; this is the reference implementation.
* :func:`evaluate_vectors` — N vectors at once: each net's value across all
  vectors is packed into one Python integer (bit ``k`` = the net's value in
  vector ``k``) and every cell is evaluated once with bitwise operations.
  For batches of tens of vectors and up this is an order of magnitude
  faster than the per-vector loop, which is what makes large equivalence
  checks and empirical switching runs cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Union

from repro.errors import SimulationError
from repro.netlist.cells import CellType, evaluate_cell
from repro.netlist.core import Bus, Net, Netlist

ValueMap = Dict[str, int]


def set_bus_value(values: ValueMap, bus: Bus, value: int) -> None:
    """Assign an unsigned integer to a bus, writing one bit value per net.

    Negative values wrap modulo the bus width (two's complement); a
    non-negative value that does not fit in the bus raises
    :class:`SimulationError` rather than silently dropping high bits.
    """
    if value < 0:
        value %= 1 << bus.width
    if value >> bus.width:
        raise SimulationError(
            f"value {value} does not fit in {bus.width}-bit bus {bus.name!r}"
        )
    for index, net in enumerate(bus.nets):
        values[net.name] = (value >> index) & 1


def bus_value(values: Mapping[str, int], bus: Bus) -> int:
    """Read a bus back as an unsigned integer."""
    total = 0
    for index, net in enumerate(bus.nets):
        if net.name not in values:
            raise SimulationError(f"no simulated value for net {net.name!r}")
        total |= (values[net.name] & 1) << index
    return total


def evaluate_netlist(
    netlist: Netlist,
    inputs: Mapping[str, Union[int, Mapping[str, int]]],
) -> ValueMap:
    """Evaluate every net of the netlist.

    ``inputs`` maps input-bus names to unsigned integers (negative values are
    wrapped modulo the bus width) and/or individual primary-input net names to
    bit values.  Every primary input must receive a value.
    """
    values: ValueMap = {}
    for net in netlist.nets.values():
        if net.is_constant:
            values[net.name] = int(net.const_value or 0)

    for name, value in inputs.items():
        if name in netlist.input_buses:
            if not isinstance(value, int):
                raise SimulationError(f"bus {name!r} expects an integer value")
            set_bus_value(values, netlist.input_buses[name], value)
        elif name in netlist.nets and netlist.nets[name].is_primary_input:
            if value not in (0, 1):
                raise SimulationError(f"net {name!r} expects a bit value, got {value!r}")
            values[name] = int(value)
        else:
            raise SimulationError(f"unknown input {name!r}")

    missing = [net.name for net in netlist.primary_inputs if net.name not in values]
    if missing:
        raise SimulationError(
            f"missing values for {len(missing)} primary inputs (e.g. {missing[:5]})"
        )

    for cell in netlist.topological_cells():
        cell_inputs = {}
        for port, net in cell.inputs.items():
            if net.name not in values:
                raise SimulationError(
                    f"net {net.name!r} used by {cell.name!r} has no value"
                )
            cell_inputs[port] = values[net.name]
        for port, value in evaluate_cell(cell.cell_type, cell_inputs).items():
            values[cell.outputs[port].name] = value
    return values


# --------------------------------------------------------------------------
# batched, bit-parallel evaluation


@dataclass
class BatchValues:
    """Packed results of a batched evaluation.

    ``values[net]`` holds one integer whose bit ``k`` is the net's value in
    vector ``k``; ``count`` is the number of vectors in the batch.
    """

    values: Dict[str, int]
    count: int

    def _net_bytes(self, name: str) -> bytes:
        """Little-endian byte view of one net's packed values (linear)."""
        if name not in self.values:
            raise SimulationError(f"no simulated value for net {name!r}")
        return self.values[name].to_bytes((self.count + 7) // 8, "little")

    def net_values(self, name: str) -> List[int]:
        """Per-vector bit values of one net."""
        if self.count == 0:
            return []
        data = self._net_bytes(name)
        return [(data[k >> 3] >> (k & 7)) & 1 for k in range(self.count)]

    def bus_values(self, bus: Bus) -> List[int]:
        """Per-vector unsigned integer values of a bus."""
        if self.count == 0:
            return []
        results = [0] * self.count
        for index, net in enumerate(bus.nets):
            # byte-wise extraction keeps this linear in the vector count
            # (bigint shifts per vector would be quadratic)
            data = self._net_bytes(net.name)
            bit = 1 << index
            for k in range(self.count):
                if (data[k >> 3] >> (k & 7)) & 1:
                    results[k] |= bit
        return results


def _evaluate_cell_packed(
    cell_type: CellType, ins: Mapping[str, int], mask: int
) -> Dict[str, int]:
    """Bitwise-parallel equivalent of :func:`evaluate_cell` on packed words.

    ``mask`` has one bit set per vector; inversions are ``mask ^ x`` so the
    result never carries bits outside the batch.
    """
    if cell_type is CellType.FA:
        a, b, cin = ins["a"], ins["b"], ins["cin"]
        axb = a ^ b
        return {"s": axb ^ cin, "co": (a & b) | (cin & axb)}
    if cell_type is CellType.HA:
        a, b = ins["a"], ins["b"]
        return {"s": a ^ b, "co": a & b}
    if cell_type is CellType.AND2:
        return {"y": ins["a"] & ins["b"]}
    if cell_type is CellType.NAND2:
        return {"y": mask ^ (ins["a"] & ins["b"])}
    if cell_type is CellType.OR2:
        return {"y": ins["a"] | ins["b"]}
    if cell_type is CellType.NOR2:
        return {"y": mask ^ (ins["a"] | ins["b"])}
    if cell_type is CellType.XOR2:
        return {"y": ins["a"] ^ ins["b"]}
    if cell_type is CellType.XNOR2:
        return {"y": mask ^ (ins["a"] ^ ins["b"])}
    if cell_type is CellType.NOT:
        return {"y": mask ^ ins["a"]}
    if cell_type is CellType.BUF:
        return {"y": ins["a"]}
    if cell_type is CellType.MUX2:
        sel = ins["sel"]
        return {"y": (ins["b"] & sel) | (ins["a"] & (mask ^ sel))}
    if cell_type is CellType.AOI21:
        return {"y": mask ^ ((ins["a"] & ins["b"]) | ins["c"])}
    if cell_type is CellType.OAI21:
        return {"y": mask ^ ((ins["a"] | ins["b"]) & ins["c"])}
    if cell_type is CellType.AOI22:
        return {"y": mask ^ ((ins["a"] & ins["b"]) | (ins["c"] & ins["d"]))}
    if cell_type is CellType.XOR3:
        return {"y": ins["a"] ^ ins["b"] ^ ins["c"]}
    if cell_type is CellType.MAJ3:
        a, b, c = ins["a"], ins["b"], ins["c"]
        return {"y": (a & b) | (c & (a | b))}
    raise SimulationError(f"unknown cell type {cell_type!r}")


def evaluate_vectors(
    netlist: Netlist,
    vectors: Sequence[Mapping[str, Union[int, Mapping[str, int]]]],
) -> BatchValues:
    """Evaluate the netlist on many input vectors at once, bit-parallel.

    Each vector has the same shape as the ``inputs`` of
    :func:`evaluate_netlist` (bus names to unsigned integers and/or primary
    input net names to bits).  All N vectors are packed into per-net integers
    and every cell is evaluated exactly once, so the cost per extra vector is
    a few machine-word operations rather than a full netlist traversal.
    """
    count = len(vectors)
    if count == 0:
        return BatchValues(values={}, count=0)
    mask = (1 << count) - 1
    nbytes = (count + 7) // 8

    # bits and per-vector coverage are accumulated in bytearrays and turned
    # into ints once at the end; |=-ing a bigint per vector would be quadratic
    input_bits: Dict[str, bytearray] = {}
    covered: Dict[str, bytearray] = {}

    def _slot(net_name: str) -> bytearray:
        if net_name not in covered:
            covered[net_name] = bytearray(nbytes)
            input_bits[net_name] = bytearray(nbytes)
        return covered[net_name]

    for k, vector in enumerate(vectors):
        byte_index, byte_bit = k >> 3, 1 << (k & 7)
        for name, value in vector.items():
            if name in netlist.input_buses:
                bus = netlist.input_buses[name]
                if not isinstance(value, int):
                    raise SimulationError(f"bus {name!r} expects an integer value")
                if value < 0:
                    value %= 1 << bus.width
                if value >> bus.width:
                    raise SimulationError(
                        f"value {value} does not fit in {bus.width}-bit "
                        f"bus {name!r}"
                    )
                for index, net in enumerate(bus.nets):
                    _slot(net.name)[byte_index] |= byte_bit
                    if (value >> index) & 1:
                        input_bits[net.name][byte_index] |= byte_bit
            elif name in netlist.nets and netlist.nets[name].is_primary_input:
                if value not in (0, 1):
                    raise SimulationError(
                        f"net {name!r} expects a bit value, got {value!r}"
                    )
                _slot(name)[byte_index] |= byte_bit
                if value:
                    input_bits[name][byte_index] |= byte_bit
            else:
                raise SimulationError(f"unknown input {name!r}")

    full_coverage = mask.to_bytes(nbytes, "little")
    partial = [name for name, cov in covered.items() if bytes(cov) != full_coverage]
    if partial:
        raise SimulationError(
            f"{len(partial)} inputs are not assigned in every vector of the "
            f"batch (e.g. {sorted(partial)[:5]})"
        )
    missing = [net.name for net in netlist.primary_inputs if net.name not in covered]
    if missing:
        raise SimulationError(
            f"missing values for {len(missing)} primary inputs (e.g. {missing[:5]})"
        )

    values: Dict[str, int] = {
        name: int.from_bytes(bits, "little") for name, bits in input_bits.items()
    }
    return _evaluate_packed_values(netlist, values, mask, count)


def _evaluate_packed_values(
    netlist: Netlist, values: Dict[str, int], mask: int, count: int
) -> BatchValues:
    """Shared bit-parallel sweep: replay the netlist's compiled program."""
    from repro.sim.program import cached_program

    program = cached_program(netlist)
    slots = program.run_packed(values, mask)
    return BatchValues(values=program.values_dict(slots), count=count)


def evaluate_packed(
    netlist: Netlist, inputs: Mapping[str, int], count: int
) -> BatchValues:
    """Evaluate ``count`` vectors given as already-packed per-input words.

    ``inputs`` maps every primary-input net name to one integer whose bit
    ``k`` is that input's value in vector ``k`` — the same packing
    :func:`evaluate_vectors` builds internally from per-vector dicts.
    Callers that can construct the packed words directly (the netlist
    equivalence checker enumerating exhaustive input patterns, for
    instance) skip the whole per-vector dict round-trip.
    """
    if count == 0:
        return BatchValues(values={}, count=0)
    mask = (1 << count) - 1
    values: Dict[str, int] = {}
    for name, word in inputs.items():
        net = netlist.nets.get(name)
        if net is None or not net.is_primary_input:
            raise SimulationError(f"unknown primary input {name!r}")
        values[name] = word & mask
    missing = [net.name for net in netlist.primary_inputs if net.name not in values]
    if missing:
        raise SimulationError(
            f"missing values for {len(missing)} primary inputs (e.g. {missing[:5]})"
        )
    return _evaluate_packed_values(netlist, values, mask, count)
