"""Bit-true evaluation of a netlist on concrete input values."""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.errors import SimulationError
from repro.netlist.cells import evaluate_cell
from repro.netlist.core import Bus, Net, Netlist

ValueMap = Dict[str, int]


def set_bus_value(values: ValueMap, bus: Bus, value: int) -> None:
    """Assign an unsigned integer to a bus, writing one bit value per net."""
    if value < 0:
        value %= 1 << bus.width
    for index, net in enumerate(bus.nets):
        values[net.name] = (value >> index) & 1


def bus_value(values: Mapping[str, int], bus: Bus) -> int:
    """Read a bus back as an unsigned integer."""
    total = 0
    for index, net in enumerate(bus.nets):
        if net.name not in values:
            raise SimulationError(f"no simulated value for net {net.name!r}")
        total |= (values[net.name] & 1) << index
    return total


def evaluate_netlist(
    netlist: Netlist,
    inputs: Mapping[str, Union[int, Mapping[str, int]]],
) -> ValueMap:
    """Evaluate every net of the netlist.

    ``inputs`` maps input-bus names to unsigned integers (negative values are
    wrapped modulo the bus width) and/or individual primary-input net names to
    bit values.  Every primary input must receive a value.
    """
    values: ValueMap = {}
    for net in netlist.nets.values():
        if net.is_constant:
            values[net.name] = int(net.const_value or 0)

    for name, value in inputs.items():
        if name in netlist.input_buses:
            if not isinstance(value, int):
                raise SimulationError(f"bus {name!r} expects an integer value")
            set_bus_value(values, netlist.input_buses[name], value)
        elif name in netlist.nets and netlist.nets[name].is_primary_input:
            if value not in (0, 1):
                raise SimulationError(f"net {name!r} expects a bit value, got {value!r}")
            values[name] = int(value)
        else:
            raise SimulationError(f"unknown input {name!r}")

    missing = [net.name for net in netlist.primary_inputs if net.name not in values]
    if missing:
        raise SimulationError(
            f"missing values for {len(missing)} primary inputs (e.g. {missing[:5]})"
        )

    for cell in netlist.topological_cells():
        cell_inputs = {}
        for port, net in cell.inputs.items():
            if net.name not in values:
                raise SimulationError(
                    f"net {net.name!r} used by {cell.name!r} has no value"
                )
            cell_inputs[port] = values[net.name]
        for port, value in evaluate_cell(cell.cell_type, cell_inputs).items():
            values[cell.outputs[port].name] = value
    return values
