"""Plain-text table rendering used by reports, benchmarks and the CLI.

The tables produced here intentionally mimic the layout of the tables in the
paper (a header row, one row per design, percentage-improvement columns) so
that benchmark output can be compared side by side with the published numbers.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_float(value: float, digits: int = 2) -> str:
    """Format a float with a fixed number of decimals, stripping ``-0.00``."""
    text = f"{value:.{digits}f}"
    if text == f"-0.{'0' * digits}":
        text = f"0.{'0' * digits}"
    return text


class TextTable:
    """A minimal text-table builder.

    >>> table = TextTable(["design", "delay (ns)"])
    >>> table.add_row(["iir", 3.68])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    design | delay (ns)
    -------+-----------
    iir    | 3.68
    """

    def __init__(self, headers: Sequence[str], float_digits: int = 2) -> None:
        self.headers: List[str] = [str(h) for h in headers]
        self.rows: List[List[str]] = []
        self.float_digits = float_digits

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append a row; floats are formatted, ``None`` renders as ``-``."""
        formatted: List[str] = []
        for cell in cells:
            if cell is None:
                formatted.append("-")
            elif isinstance(cell, float):
                formatted.append(format_float(cell, self.float_digits))
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def render(self, title: Optional[str] = None) -> str:
        """Render the table as an aligned plain-text block."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

        separator = "-+-".join("-" * width for width in widths)
        lines = []
        if title:
            lines.append(title)
            lines.append("=" * len(title))
        lines.append(render_row(self.headers))
        lines.append(separator)
        lines.extend(render_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.render()
