"""Metric arithmetic shared by the comparison harness and sweep analysis.

Lives in :mod:`repro.utils` (rather than :mod:`repro.flows.compare`, which
re-exports it for backwards compatibility) so that the exploration subsystem
can use it without importing the flow layer.
"""

from __future__ import annotations

from typing import Optional


def summary_line(
    design_name: str,
    method: str,
    delay_ns: Optional[float],
    area: Optional[float],
    tree_energy: Optional[float],
    cell_count: int,
    fa_count: int,
    ha_count: int,
) -> str:
    """The shared one-line result summary format.

    Used by both ``SynthesisResult.summary`` and ``PointMetrics.summary`` so
    fresh-run and cached-sweep summaries can never drift apart.  Metrics of
    skipped analyses (``None``) render as ``n/a``.
    """

    def fmt(value: Optional[float], spec: str) -> str:
        return format(value, spec) if value is not None else "n/a"

    return (
        f"{design_name:<18} {method:<16} "
        f"delay={fmt(delay_ns, '6.3f')} ns  "
        f"area={fmt(area, '9.1f')}  "
        f"E_tree={fmt(tree_energy, '9.3f')}  "
        f"cells={cell_count:5d} (FA={fa_count}, HA={ha_count})"
    )


def improvement_pct(reference: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``reference`` (positive = better)."""
    if reference == 0:
        return 0.0
    return 100.0 * (reference - improved) / reference
