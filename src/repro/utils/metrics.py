"""Metric arithmetic shared by the comparison harness and sweep analysis.

Lives in :mod:`repro.utils` (rather than :mod:`repro.flows.compare`, which
re-exports it for backwards compatibility) so that the exploration subsystem
can use it without importing the flow layer.
"""

from __future__ import annotations


def improvement_pct(reference: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``reference`` (positive = better)."""
    if reference == 0:
        return 0.0
    return 100.0 * (reference - improved) / reference
