"""Bit-manipulation helpers shared by the matrix builder and the simulators.

All functions treat integers as unbounded Python ints; width-limited behaviour
(modulo ``2**width``) is always explicit in the function signature.
"""

from __future__ import annotations

from typing import List


def bit_length(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1).

    >>> bit_length(0)
    1
    >>> bit_length(5)
    3
    """
    if value < 0:
        raise ValueError("bit_length is defined for non-negative values only")
    return max(1, value.bit_length())


def bits_of(value: int, width: int) -> List[int]:
    """Return the ``width`` least-significant bits of ``value``, LSB first.

    >>> bits_of(6, 4)
    [0, 1, 1, 0]
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    return [(value >> i) & 1 for i in range(width)]


def columns_of_constant(value: int, width: int) -> List[int]:
    """Columns (bit positions) at which ``value mod 2**width`` has a 1 bit.

    >>> columns_of_constant(10, 8)
    [1, 3]
    >>> columns_of_constant(-1, 4)
    [0, 1, 2, 3]
    """
    if width <= 0:
        return []
    reduced = value % (1 << width)
    return [i for i in range(width) if (reduced >> i) & 1]


def to_twos_complement(value: int, width: int) -> int:
    """Encode a (possibly negative) integer into ``width``-bit two's complement."""
    if width <= 0:
        raise ValueError("width must be positive")
    return value % (1 << width)


def from_twos_complement(value: int, width: int) -> int:
    """Decode a ``width``-bit unsigned value as a signed two's-complement integer."""
    if width <= 0:
        raise ValueError("width must be positive")
    value %= 1 << width
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def signed_value(bits: List[int]) -> int:
    """Interpret an LSB-first bit list as a signed two's-complement integer."""
    if not bits:
        return 0
    unsigned = sum(b << i for i, b in enumerate(bits))
    return from_twos_complement(unsigned, len(bits))


def csd_digits(value: int) -> List[int]:
    """Canonical signed-digit (CSD) recoding of a non-negative integer.

    Returns a list of digits in ``{-1, 0, +1}``, LSB first, such that
    ``sum(d * 2**i) == value`` and no two adjacent digits are non-zero.  CSD is
    used as an optional recoding for constant multiplications; it minimises the
    number of non-zero digits, which maps directly to the number of addend rows
    contributed by a constant coefficient.

    >>> csd_digits(7)
    [-1, 0, 0, 1]
    >>> sum(d * 2**i for i, d in enumerate(csd_digits(173))) == 173
    True
    """
    if value < 0:
        raise ValueError("csd_digits expects a non-negative value")
    digits: List[int] = []
    while value:
        if value & 1:
            # Choose the digit so that the remaining value becomes even and the
            # next digit is forced to zero (the classic non-adjacent form).
            digit = 2 - (value % 4)
            if digit == 2:
                digit = -1 if (value % 4) == 3 else 1
            digits.append(digit)
            value -= digit
        else:
            digits.append(0)
        value >>= 1
    if not digits:
        digits = [0]
    return digits
