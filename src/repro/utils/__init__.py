"""Small shared helpers used across the repro package."""

from repro.utils.bits import (
    bit_length,
    bits_of,
    columns_of_constant,
    csd_digits,
    signed_value,
    to_twos_complement,
    from_twos_complement,
)
from repro.utils.tables import TextTable, format_float

__all__ = [
    "bit_length",
    "bits_of",
    "columns_of_constant",
    "csd_digits",
    "signed_value",
    "to_twos_complement",
    "from_twos_complement",
    "TextTable",
    "format_float",
]
