"""Plain-text timing reports."""

from __future__ import annotations

from typing import List, Optional

from repro.netlist.core import Netlist
from repro.tech.library import TechLibrary
from repro.timing.arrival import TimingResult
from repro.timing.critical_path import extract_critical_path


def timing_report(
    netlist: Netlist,
    library: TechLibrary,
    timing: TimingResult,
    max_path_steps: Optional[int] = 20,
) -> str:
    """Render a short timing report: delay, worst output and critical path."""
    lines: List[str] = []
    lines.append(f"Timing report for {netlist.name!r} (library {library.name!r})")
    lines.append(f"  design delay          : {timing.delay:.3f} ns")
    if timing.worst_output_net:
        lines.append(
            f"  worst primary output  : {timing.worst_output_net} "
            f"@ {timing.worst_output_arrival:.3f} ns"
        )
    lines.append(f"  worst internal net    : {timing.worst_net} @ {timing.worst_arrival:.3f} ns")

    path = extract_critical_path(netlist, library, timing)
    lines.append(f"  critical path ({len(path)} steps):")
    shown = path if max_path_steps is None else path[-max_path_steps:]
    hidden = len(path) - len(shown)
    if hidden > 0:
        lines.append(f"    ... ({hidden} earlier steps omitted)")
    for step in shown:
        lines.append(f"    {step.describe()}")
    return "\n".join(lines)
