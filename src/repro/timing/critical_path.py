"""Critical-path extraction by backtracking through the arrival times."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import NetlistError
from repro.netlist.cells import cell_input_ports
from repro.netlist.core import Net, Netlist
from repro.tech.library import TechLibrary
from repro.timing.arrival import TimingResult


@dataclass
class PathStep:
    """One hop of a critical path: arriving at ``net`` through ``cell``."""

    net_name: str
    arrival: float
    cell_name: Optional[str] = None
    cell_type: Optional[str] = None
    through_port: Optional[str] = None

    def describe(self) -> str:
        """Human-readable rendering of the step."""
        if self.cell_name is None:
            return f"{self.net_name} (input, t={self.arrival:.3f})"
        return (
            f"{self.net_name} (t={self.arrival:.3f}) <- {self.cell_type} "
            f"{self.cell_name}.{self.through_port}"
        )


def extract_critical_path(
    netlist: Netlist,
    library: TechLibrary,
    timing: TimingResult,
    target: Optional[Union[str, Net]] = None,
) -> List[PathStep]:
    """Trace the worst path ending at ``target`` (default: the worst output).

    The returned list is ordered from the launching primary input (or
    constant) to the target net.
    """
    if target is None:
        target_name = timing.worst_output_net or timing.worst_net
    else:
        target_name = target.name if isinstance(target, Net) else target
    if target_name is None:
        return []
    if target_name not in netlist.nets:
        raise NetlistError(f"critical-path target {target_name!r} is not a net")

    steps: List[PathStep] = []
    current = netlist.nets[target_name]
    epsilon = 1e-9
    while True:
        arrival = timing.arrivals.get(current.name, 0.0)
        if current.driver is None:
            steps.append(PathStep(net_name=current.name, arrival=arrival))
            break
        cell, out_port = current.driver
        best_port = None
        best_net = None
        for in_port in cell_input_ports(cell.cell_type):
            in_net = cell.inputs[in_port]
            in_arrival = timing.arrivals.get(in_net.name, 0.0)
            edge = library.delay(cell.cell_type, in_port, out_port)
            if abs(in_arrival + edge - arrival) <= epsilon:
                best_port, best_net = in_port, in_net
                break
        if best_net is None:
            # Numerical fallback: follow the slowest input.
            best_port = max(
                cell_input_ports(cell.cell_type),
                key=lambda p: timing.arrivals.get(cell.inputs[p].name, 0.0),
            )
            best_net = cell.inputs[best_port]
        steps.append(
            PathStep(
                net_name=current.name,
                arrival=arrival,
                cell_name=cell.name,
                cell_type=cell.cell_type.value,
                through_port=best_port,
            )
        )
        current = best_net
    steps.reverse()
    return steps
