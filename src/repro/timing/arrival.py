"""Arrival-time propagation (static timing analysis).

A topological sweep computes, for every net, the latest time at which its
value can settle, given primary-input arrival times and the library's
pin-to-pin cell delays.  This is the "sign-off" view of timing; the allocation
algorithms use the simpler Ds/Dc model while they build the tree, and the
tests check that both views agree on FA/HA-only structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

from repro.errors import NetlistError
from repro.netlist.cells import cell_input_ports, cell_output_ports
from repro.netlist.core import Net, Netlist
from repro.tech.library import TechLibrary

ArrivalMap = Mapping[Union[str, Net], float]


@dataclass
class TimingResult:
    """Output of :func:`compute_arrival_times`."""

    netlist_name: str
    arrivals: Dict[str, float]
    worst_output_net: Optional[str] = None
    worst_output_arrival: float = 0.0
    worst_net: Optional[str] = None
    worst_arrival: float = 0.0
    input_arrivals: Dict[str, float] = field(default_factory=dict)

    def arrival_of(self, net: Union[str, Net]) -> float:
        """Arrival time of a net (by name or object)."""
        name = net.name if isinstance(net, Net) else net
        if name not in self.arrivals:
            raise NetlistError(f"no arrival time recorded for net {name!r}")
        return self.arrivals[name]

    @property
    def delay(self) -> float:
        """The design delay: worst arrival over primary outputs.

        Falls back to the worst arrival over all nets when the netlist has no
        registered primary outputs.
        """
        if self.worst_output_net is not None:
            return self.worst_output_arrival
        return self.worst_arrival


def _normalize_input_arrivals(
    netlist: Netlist, input_arrivals: Optional[ArrivalMap]
) -> Dict[str, float]:
    """Resolve user-provided arrival times to a name-keyed dict."""
    resolved: Dict[str, float] = {}
    if not input_arrivals:
        return resolved
    for key, value in input_arrivals.items():
        name = key.name if isinstance(key, Net) else str(key)
        if name not in netlist.nets:
            raise NetlistError(f"arrival given for unknown net {name!r}")
        resolved[name] = float(value)
    return resolved


def compute_arrival_times(
    netlist: Netlist,
    library: TechLibrary,
    input_arrivals: Optional[ArrivalMap] = None,
    default_input_arrival: float = 0.0,
    use_net_attributes: bool = True,
    net_delays: Optional[Mapping[str, float]] = None,
) -> TimingResult:
    """Propagate arrival times through the netlist.

    Primary-input arrivals are taken, in priority order, from
    ``input_arrivals``, from the net's ``attributes["arrival"]`` annotation
    (written by the matrix builder) when ``use_net_attributes`` is set, and
    finally from ``default_input_arrival``.  Constant nets arrive at time 0.

    ``net_delays`` adds a per-net interconnect delay (keyed by net name, in
    ns) on top of the driving arrival — the lumped wire model the placement
    subsystem produces (:func:`repro.place.wires.wire_delays`), making the
    sweep wire-aware.  Unlisted nets fly at zero wire delay, so the default
    (``None``) reproduces the classic pre-place view exactly.
    """
    explicit = _normalize_input_arrivals(netlist, input_arrivals)
    wire = net_delays or {}
    arrivals: Dict[str, float] = {}

    for net in netlist.nets.values():
        if net.is_constant:
            arrivals[net.name] = 0.0
        elif net.is_primary_input:
            if net.name in explicit:
                arrivals[net.name] = explicit[net.name]
            elif use_net_attributes and "arrival" in net.attributes:
                arrivals[net.name] = float(net.attributes["arrival"])  # type: ignore[arg-type]
            else:
                arrivals[net.name] = default_input_arrival
            arrivals[net.name] += wire.get(net.name, 0.0)

    for cell in netlist.topological_cells():
        for out_port in cell_output_ports(cell.cell_type):
            worst = 0.0
            for in_port in cell_input_ports(cell.cell_type):
                in_net = cell.inputs[in_port]
                in_arrival = arrivals.get(in_net.name, default_input_arrival)
                worst = max(
                    worst,
                    in_arrival + library.delay(cell.cell_type, in_port, out_port),
                )
            out_name = cell.outputs[out_port].name
            arrivals[out_name] = worst + wire.get(out_name, 0.0)

    worst_net = None
    worst_arrival = 0.0
    for name, value in arrivals.items():
        if worst_net is None or value > worst_arrival:
            worst_net, worst_arrival = name, value

    worst_output_net = None
    worst_output_arrival = 0.0
    for net in netlist.primary_outputs:
        value = arrivals.get(net.name, 0.0)
        if worst_output_net is None or value > worst_output_arrival:
            worst_output_net, worst_output_arrival = net.name, value

    return TimingResult(
        netlist_name=netlist.name,
        arrivals=arrivals,
        worst_output_net=worst_output_net,
        worst_output_arrival=worst_output_arrival,
        worst_net=worst_net,
        worst_arrival=worst_arrival,
        input_arrivals={
            net.name: arrivals[net.name]
            for net in netlist.primary_inputs
            if net.name in arrivals
        },
    )
