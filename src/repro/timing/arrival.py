"""Arrival-time propagation (static timing analysis).

A topological sweep computes, for every net, the latest time at which its
value can settle, given primary-input arrival times and the library's
pin-to-pin cell delays.  This is the "sign-off" view of timing; the allocation
algorithms use the simpler Ds/Dc model while they build the tree, and the
tests check that both views agree on FA/HA-only structures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set, Union

from repro import obs
from repro.errors import NetlistError
from repro.netlist.cells import cell_input_ports, cell_output_ports
from repro.netlist.core import Cell, Net, Netlist
from repro.tech.library import TechLibrary

ArrivalMap = Mapping[Union[str, Net], float]


@dataclass
class TimingResult:
    """Output of :func:`compute_arrival_times`."""

    netlist_name: str
    arrivals: Dict[str, float]
    worst_output_net: Optional[str] = None
    worst_output_arrival: float = 0.0
    worst_net: Optional[str] = None
    worst_arrival: float = 0.0
    input_arrivals: Dict[str, float] = field(default_factory=dict)

    def arrival_of(self, net: Union[str, Net]) -> float:
        """Arrival time of a net (by name or object)."""
        name = net.name if isinstance(net, Net) else net
        if name not in self.arrivals:
            raise NetlistError(f"no arrival time recorded for net {name!r}")
        return self.arrivals[name]

    @property
    def delay(self) -> float:
        """The design delay: worst arrival over primary outputs.

        Falls back to the worst arrival over all nets when the netlist has no
        registered primary outputs.
        """
        if self.worst_output_net is not None:
            return self.worst_output_arrival
        return self.worst_arrival


def _normalize_input_arrivals(
    netlist: Netlist, input_arrivals: Optional[ArrivalMap]
) -> Dict[str, float]:
    """Resolve user-provided arrival times to a name-keyed dict."""
    resolved: Dict[str, float] = {}
    if not input_arrivals:
        return resolved
    for key, value in input_arrivals.items():
        name = key.name if isinstance(key, Net) else str(key)
        if name not in netlist.nets:
            raise NetlistError(f"arrival given for unknown net {name!r}")
        resolved[name] = float(value)
    return resolved


def _source_arrival(
    net: Net,
    explicit: Dict[str, float],
    default_input_arrival: float,
    use_net_attributes: bool,
    wire: Mapping[str, float],
) -> float:
    """Arrival of a primary-input or constant net (shared by both sweeps)."""
    if net.is_constant:
        return 0.0
    if net.name in explicit:
        value = explicit[net.name]
    elif use_net_attributes and "arrival" in net.attributes:
        value = float(net.attributes["arrival"])  # type: ignore[arg-type]
    else:
        value = default_input_arrival
    return value + wire.get(net.name, 0.0)


def _cell_output_arrival(
    cell: Cell,
    out_port: str,
    out_name: str,
    arrivals: Dict[str, float],
    library: TechLibrary,
    wire: Mapping[str, float],
) -> float:
    """One output's arrival from its input arcs (shared by both sweeps).

    The worst arc initializes from the first input rather than from 0.0, so
    negative input arrivals (early-mode analysis, negative
    ``default_input_arrival``) propagate instead of being clamped at zero.
    An input net with no recorded arrival is floating — neither a primary
    input, a constant, nor driven — and is a structural error, not a
    silently-default-timed source.
    """
    worst: Optional[float] = None
    for in_port in cell_input_ports(cell.cell_type):
        in_net = cell.inputs[in_port]
        in_arrival = arrivals.get(in_net.name)
        if in_arrival is None:
            raise NetlistError(
                f"net {in_net.name!r} read by input {in_port!r} of cell "
                f"{cell.name!r} is undriven (not a primary input, constant, "
                f"or cell output)"
            )
        arc = in_arrival + library.delay(cell.cell_type, in_port, out_port)
        if worst is None or arc > worst:
            worst = arc
    return (0.0 if worst is None else worst) + wire.get(out_name, 0.0)


def _finalize(netlist: Netlist, arrivals: Dict[str, float]) -> TimingResult:
    """Fold an arrival map into a :class:`TimingResult`."""
    worst_net = None
    worst_arrival = 0.0
    for name, value in arrivals.items():
        if worst_net is None or value > worst_arrival:
            worst_net, worst_arrival = name, value

    worst_output_net = None
    worst_output_arrival = 0.0
    for net in netlist.primary_outputs:
        value = arrivals.get(net.name, 0.0)
        if worst_output_net is None or value > worst_output_arrival:
            worst_output_net, worst_output_arrival = net.name, value

    return TimingResult(
        netlist_name=netlist.name,
        arrivals=arrivals,
        worst_output_net=worst_output_net,
        worst_output_arrival=worst_output_arrival,
        worst_net=worst_net,
        worst_arrival=worst_arrival,
        input_arrivals={
            net.name: arrivals[net.name]
            for net in netlist.primary_inputs
            if net.name in arrivals
        },
    )


def compute_arrival_times(
    netlist: Netlist,
    library: TechLibrary,
    input_arrivals: Optional[ArrivalMap] = None,
    default_input_arrival: float = 0.0,
    use_net_attributes: bool = True,
    net_delays: Optional[Mapping[str, float]] = None,
    previous: Optional[TimingResult] = None,
    changed_nets: Optional[Iterable[str]] = None,
) -> TimingResult:
    """Propagate arrival times through the netlist.

    Primary-input arrivals are taken, in priority order, from
    ``input_arrivals``, from the net's ``attributes["arrival"]`` annotation
    (written by the matrix builder) when ``use_net_attributes`` is set, and
    finally from ``default_input_arrival``.  Constant nets arrive at time 0.
    A cell input net with no arrival source at all — undriven and not a
    primary input or constant — raises :class:`NetlistError` naming the net
    and the consuming cell.

    ``net_delays`` adds a per-net interconnect delay (keyed by net name, in
    ns) on top of the driving arrival — the lumped wire model the placement
    subsystem produces (:func:`repro.place.wires.wire_delays`), making the
    sweep wire-aware.  Unlisted nets fly at zero wire delay, so the default
    (``None``) reproduces the classic pre-place view exactly.

    **Incremental mode.**  Passing ``previous`` (a result for an earlier
    revision of the *same* netlist, computed under the same timing context:
    identical ``input_arrivals`` / ``default_input_arrival`` /
    ``net_delays``) together with ``changed_nets`` (the names every rewrite
    touched since — see :attr:`repro.opt.base.RewritePass.touched_nets`)
    re-propagates only the dirty fanout cone: arrivals of removed nets are
    pruned, new and touched nets are re-sourced or re-driven, and
    recomputation stops at the frontier where values stop changing.  The
    full sweep remains the sign-off reference; a fuzz property pins
    incremental ≡ full exactly (identical float operations per net, so
    equality is bitwise, not approximate).
    """
    explicit = _normalize_input_arrivals(netlist, input_arrivals)
    wire = net_delays or {}

    if previous is not None:
        return _incremental_arrival_times(
            netlist,
            library,
            explicit,
            default_input_arrival,
            use_net_attributes,
            wire,
            previous,
            set(changed_nets or ()),
        )

    arrivals: Dict[str, float] = {}
    for net in netlist.nets.values():
        if net.is_constant or net.is_primary_input:
            arrivals[net.name] = _source_arrival(
                net, explicit, default_input_arrival, use_net_attributes, wire
            )

    for cell in netlist.topological_cells():
        for out_port in cell_output_ports(cell.cell_type):
            out_name = cell.outputs[out_port].name
            arrivals[out_name] = _cell_output_arrival(
                cell, out_port, out_name, arrivals, library, wire
            )

    return _finalize(netlist, arrivals)


def _incremental_arrival_times(
    netlist: Netlist,
    library: TechLibrary,
    explicit: Dict[str, float],
    default_input_arrival: float,
    use_net_attributes: bool,
    wire: Mapping[str, float],
    previous: TimingResult,
    changed: Set[str],
) -> TimingResult:
    """Re-propagate arrivals through the dirty fanout cone only.

    Seeds a worklist with the cells driving or reading every dirty net
    (touched by a pass, new since ``previous``, or undriven-but-read) and
    drains it in cached topological order, so each affected cell is
    re-evaluated exactly once with final input arrivals.  Propagation past
    a cell output stops when its recomputed arrival is unchanged, which is
    what makes a localized rewrite cost its cone, not the netlist.
    """
    nets = netlist.nets
    arrivals = {
        name: value for name, value in previous.arrivals.items() if name in nets
    }

    dirty = {name for name in changed if name in nets}
    for name, net in nets.items():
        if name not in arrivals and (
            net.is_constant or net.is_primary_input or net.driver or net.loads
        ):
            dirty.add(name)

    topo_index = netlist.topological_index()
    heap: list = []
    scheduled: Set[str] = set()
    recomputed = 0

    def _schedule(cell: Cell) -> None:
        if cell.name not in scheduled:
            scheduled.add(cell.name)
            heapq.heappush(heap, (topo_index[cell.name], cell.name, cell))

    for name in dirty:
        net = nets[name]
        if net.is_constant or net.is_primary_input:
            arrivals[name] = _source_arrival(
                net, explicit, default_input_arrival, use_net_attributes, wire
            )
            recomputed += 1
            # a dirty net's *loads* may have been rebound to it even when its
            # own arrival is unchanged (a rewrite replacing a cell output with
            # a constant or an input), so the consumers always re-evaluate
            for load_cell, _port in net.loads:
                _schedule(load_cell)
        else:
            if net.driver is not None:
                _schedule(net.driver[0])
            else:
                # undriven: drop any stale arrival so a consuming cell
                # re-raises the floating-net error the full sweep would
                arrivals.pop(name, None)
            for load_cell, _port in net.loads:
                _schedule(load_cell)

    while heap:
        _, _, cell = heapq.heappop(heap)
        for out_port in cell_output_ports(cell.cell_type):
            out_net = cell.outputs[out_port]
            value = _cell_output_arrival(
                cell, out_port, out_net.name, arrivals, library, wire
            )
            recomputed += 1
            if arrivals.get(out_net.name) != value:
                arrivals[out_net.name] = value
                for load_cell, _port in out_net.loads:
                    _schedule(load_cell)

    obs.counter("timing.incremental_nets", recomputed)
    return _finalize(netlist, arrivals)
