"""Static timing analysis over gate-level netlists."""

from repro.timing.arrival import TimingResult, compute_arrival_times
from repro.timing.critical_path import PathStep, extract_critical_path
from repro.timing.report import timing_report

__all__ = [
    "TimingResult",
    "compute_arrival_times",
    "PathStep",
    "extract_critical_path",
    "timing_report",
]
