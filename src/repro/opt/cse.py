"""Structural hashing / common-subexpression merging.

Two cells of the same type reading the same input nets compute the same
outputs, so one of them is redundant.  The pass sweeps the netlist in
topological order keeping a hash table of canonical cell signatures; every
later duplicate is retired in favour of the first occurrence.  Because
merges rewire fanout *before* downstream cells are visited, one sweep merges
whole equivalent cones, not just single cells.

Signatures are canonicalized for commutativity: the two-input gates, HA and
FA (symmetric in all three inputs) sort their input nets, AOI21 sorts its
AND-side pair, and MUX2 is order-sensitive.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.netlist.cells import CellType, cell_input_ports, cell_output_ports
from repro.netlist.core import Cell, Netlist
from repro.opt.base import RewritePass, retire_cell

#: cell types whose inputs are fully interchangeable
_COMMUTATIVE = frozenset(
    {
        CellType.AND2,
        CellType.NAND2,
        CellType.OR2,
        CellType.NOR2,
        CellType.XOR2,
        CellType.XNOR2,
        CellType.HA,
        CellType.FA,
        CellType.XOR3,
        CellType.MAJ3,
    }
)


def _signature(cell: Cell) -> Tuple:
    """Canonical structural signature of a cell (type + input net names)."""
    names = [cell.inputs[p].name for p in cell_input_ports(cell.cell_type)]
    if cell.cell_type in _COMMUTATIVE:
        names = sorted(names)
    elif cell.cell_type in (CellType.AOI21, CellType.OAI21):
        names = sorted(names[:2]) + names[2:]
    elif cell.cell_type is CellType.AOI22:
        # (a&b)|(c&d): each pair commutes, and the two pairs commute
        names = sorted([sorted(names[:2]), sorted(names[2:])])
        names = names[0] + names[1]
    return (cell.cell_type.value, tuple(names))


class CommonSubexpressionPass(RewritePass):
    """Merge structurally identical cells onto a single instance."""

    name = "cse"

    def run(self, netlist: Netlist) -> int:
        changed = 0
        self.touched_nets = set()
        table: Dict[Tuple, Cell] = {}
        for cell in netlist.topological_cells():
            if cell.cell_type is CellType.BUF:
                # BUFs are either primary-output anchors (must stay put) or
                # transparent wires the cleanup pass removes; merging them
                # only churns the anchor structure.
                continue
            signature = _signature(cell)
            original = table.get(signature)
            if original is None:
                table[signature] = cell
                continue
            replacements = {
                port: original.outputs[port]
                for port in cell_output_ports(cell.cell_type)
            }
            self.touched_nets |= retire_cell(netlist, cell, replacements)
            changed += 1
        return changed
