"""Optimization reports: per-pass statistics and before/after summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.netlist.stats import NetlistStats
from repro.opt.equivalence import NetlistEquivalenceReport
from repro.utils.tables import TextTable


@dataclass
class PassStat:
    """One pass invocation inside the pipeline's fixpoint loop."""

    pass_name: str
    iteration: int
    rewrites: int
    cells_before: int
    cells_after: int
    elapsed_s: float
    touched_nets: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-able record (one row of the opt report artifact)."""
        return {
            "pass": self.pass_name,
            "iteration": self.iteration,
            "rewrites": self.rewrites,
            "cells_before": self.cells_before,
            "cells_after": self.cells_after,
            "elapsed_s": round(self.elapsed_s, 6),
            "touched_nets": self.touched_nets,
        }


@dataclass
class OptReport:
    """Everything one :class:`~repro.opt.manager.PassManager` run produced."""

    opt_level: int
    iterations: int
    converged: bool
    before: NetlistStats
    after: NetlistStats
    passes: List[PassStat] = field(default_factory=list)
    equivalence: Optional[NetlistEquivalenceReport] = None
    validated: bool = False
    elapsed_s: float = 0.0
    #: worst-output arrival before/after, when the manager was given a
    #: timing library (tracked incrementally across pass iterations)
    delay_before_ns: Optional[float] = None
    delay_after_ns: Optional[float] = None

    @property
    def cells_removed(self) -> int:
        """Net cell-count reduction over the whole pipeline."""
        return self.before.num_cells - self.after.num_cells

    @property
    def total_rewrites(self) -> int:
        """Sum of rewrites over every pass invocation."""
        return sum(stat.rewrites for stat in self.passes)

    @property
    def area_delta(self) -> Optional[float]:
        """Area reduction (positive = smaller), when area was computed."""
        if self.before.area is None or self.after.area is None:
            return None
        return self.before.area - self.after.area

    def to_dict(self) -> Dict[str, object]:
        """JSON-able summary for artifacts and the synthesis metric record."""
        return {
            "opt_level": self.opt_level,
            "iterations": self.iterations,
            "converged": self.converged,
            "cells_before": self.before.num_cells,
            "cells_after": self.after.num_cells,
            "cells_removed": self.cells_removed,
            "area_before": self.before.area,
            "area_after": self.after.area,
            "logic_depth_before": self.before.logic_depth,
            "logic_depth_after": self.after.logic_depth,
            "total_rewrites": self.total_rewrites,
            "delay_before_ns": self.delay_before_ns,
            "delay_after_ns": self.delay_after_ns,
            "validated": self.validated,
            "equivalence": (
                self.equivalence.to_dict() if self.equivalence is not None else None
            ),
            "passes": [stat.to_dict() for stat in self.passes],
            "elapsed_s": round(self.elapsed_s, 6),
        }

    def render(self) -> str:
        """Human-readable report: per-pass table plus before/after deltas."""
        table = TextTable(
            ["iter", "pass", "rewrites", "cells", "time ms"], float_digits=2
        )
        for stat in self.passes:
            table.add_row(
                [
                    stat.iteration,
                    stat.pass_name,
                    stat.rewrites,
                    f"{stat.cells_before} -> {stat.cells_after}",
                    stat.elapsed_s * 1e3,
                ]
            )
        lines = [table.render(title=f"Optimization pipeline (-O{self.opt_level})")]
        area_text = ""
        if self.area_delta is not None:
            area_text = (
                f", area {self.before.area:.1f} -> {self.after.area:.1f}"
                f" ({self.area_delta:+.1f} saved)"
            )
        lines.append(
            f"cells {self.before.num_cells} -> {self.after.num_cells} "
            f"({self.cells_removed} removed), depth {self.before.logic_depth} -> "
            f"{self.after.logic_depth}{area_text}"
        )
        if self.equivalence is not None:
            mode = "exhaustive" if self.equivalence.exhaustive else "random"
            status = "ok" if self.equivalence.equivalent else "FAILED"
            lines.append(
                f"equivalence: {status} ({self.equivalence.vectors_checked} "
                f"{mode} vectors)"
            )
        return "\n".join(lines)
