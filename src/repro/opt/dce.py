"""Dead cell / dead net elimination.

A cell is live when it lies in the transitive fanin cone of a primary
output; everything else — unread carries of truncated columns, cones cut
loose by constant folding or CSE — is deleted.  Cells are removed in reverse
topological order so every removal sees load-free outputs, and nets that end
up fully disconnected (no driver, no readers, no interface role) are swept
away afterwards.
"""

from __future__ import annotations

from repro.netlist.core import Netlist
from repro.opt.base import RewritePass


class DeadCellEliminationPass(RewritePass):
    """Remove every cell outside the primary outputs' fanin cone."""

    name = "dce"

    def run(self, netlist: Netlist) -> int:
        live = {cell.name for cell in netlist.transitive_fanin(netlist.primary_outputs)}
        changed = 0
        # removals only: dead nets vanish from the arrival map, which the
        # incremental timing sweep handles by pruning, not re-propagation
        self.touched_nets = set()
        for cell in reversed(netlist.topological_cells()):
            if cell.name not in live:
                netlist.remove_cell(cell)
                changed += 1
        # sweep nets orphaned by earlier rewrites (not counted as rewrites:
        # net removal cannot enable further cell-level work)
        for net in list(netlist.nets.values()):
            netlist.discard_net_if_disconnected(net)
        return changed
