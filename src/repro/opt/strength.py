"""FA/HA strength reduction.

Full and half adders are the workhorses of the compressor tree, and the
matrix construction routinely feeds them constants (truncated columns, CSD
recoding, final-adder padding) or duplicated nets (squarer folding).  This
pass reduces such adders to strictly cheaper forms, handling both outputs
(``s`` and ``co``) simultaneously:

* ``FA(a, b, 0)``  -> ``HA(a, b)``
* ``FA(a, b, 1)``  -> ``s = XNOR2(a, b)``, ``co = OR2(a, b)``
* ``HA(a, 0)``     -> ``s = a``, ``co = 0``
* ``HA(a, 1)``     -> ``s = NOT a``, ``co = a``
* ``FA(a, 0, 1)``  -> ``s = NOT a``, ``co = a``
* ``FA(a, a, c)``  -> ``s = c``,  ``co = a``     (duplicated inputs)
* ``HA(a, a)``     -> ``s = 0``,  ``co = a``
* all-constant adders fold away completely.

The pass runs one topological sweep per invocation; chains (an FA reduced to
an HA whose remaining input then goes constant) converge across the pass
manager's fixpoint iterations.
"""

from __future__ import annotations

from repro.netlist.cells import CellType
from repro.netlist.core import Netlist
from repro.opt.base import (
    RewritePass,
    cell_truth_tables,
    classify_truth_table,
    free_input_nets,
    materialize,
    retire_cell,
)


class StrengthReductionPass(RewritePass):
    """Reduce FA/HA cells with constant or duplicated inputs."""

    name = "fa-ha-strength"

    def run(self, netlist: Netlist) -> int:
        changed = 0
        self.touched_nets = set()
        for cell in netlist.topological_cells():
            if cell.cell_type not in (CellType.FA, CellType.HA):
                continue
            free, const_ports = free_input_nets(cell)
            if len(free) > 2:
                continue  # a full FA on three distinct variable inputs
            if cell.cell_type is CellType.HA and len(free) == 2 and not const_ports:
                continue  # an HA on two distinct variable inputs is minimal
            if (
                cell.cell_type is CellType.FA
                and len(free) == 2
                and list(const_ports.values()) == [0]
            ):
                # FA with one constant-0 input is exactly a half adder; check
                # this before the generic classification, which would split
                # the same function into a separate XOR2 + AND2 pair.
                ha = netlist.add_cell(CellType.HA, {"a": free[0], "b": free[1]})
                self.touched_nets |= retire_cell(
                    netlist, cell, {"s": ha.outputs["s"], "co": ha.outputs["co"]}
                )
                changed += 1
                continue
            tables = cell_truth_tables(cell, free)
            specs = {port: classify_truth_table(tt) for port, tt in tables.items()}
            if all(spec is not None for spec in specs.values()):
                # Both outputs collapse to consts / wires / inverters / gates.
                # Cost guard: replacing the adder costs one cell per
                # materialized gate plus one BUF anchor per primary-output
                # port; past two new cells the rewrite inflates the netlist
                # (e.g. XNOR+OR plus anchors for an FA whose outputs are
                # both primary outputs) instead of shrinking it.
                materialized = sum(
                    1 for spec in specs.values() if spec[0] in ("not", "gate")
                )
                anchors = sum(
                    1
                    for port in specs
                    if netlist.is_primary_output(cell.outputs[port])
                )
                if materialized + anchors > 2:
                    continue
                replacements = {
                    port: materialize(netlist, spec, free)
                    for port, spec in specs.items()
                }
                self.touched_nets |= retire_cell(netlist, cell, replacements)
                changed += 1
        return changed
