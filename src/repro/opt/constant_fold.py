"""Constant folding and propagation.

One topological sweep per invocation: every single-output cell with a
constant or duplicated input has its boolean function evaluated (through
:func:`repro.netlist.cells.evaluate_cell`) over the remaining free inputs;
when the function collapses to a constant, a wire, an inverter or a smaller
two-input gate, the cell is retired in favour of that form.  Because the
sweep is topological, a constant produced early in the sweep propagates
through its whole fanout cone within the same invocation.

Examples of what one sweep rewrites::

    AND2(x, 0)      -> 0            XOR2(x, x)   -> 0
    AND2(x, 1)      -> x            NAND2(x, x)  -> NOT x
    NOR2(x, 1)      -> 0            MUX2(a, a, s)-> a
    XNOR2(x, 0)     -> NOT x        MUX2(a, b, 1)-> b
    AOI21(a, 1, c)  -> NOR2(a, c)   AOI21(a, b, 0) -> NAND2(a, b)
    NOT(0)          -> 1

FA/HA cells are left to :mod:`repro.opt.strength`, which knows how to reduce
both outputs at once.
"""

from __future__ import annotations

from repro.netlist.cells import CellType, cell_input_ports
from repro.netlist.core import Netlist
from repro.opt.base import (
    RewritePass,
    cell_truth_tables,
    classify_truth_table,
    free_input_nets,
    materialize,
    retire_cell,
)


class ConstantFoldPass(RewritePass):
    """Fold constant / duplicated inputs through every single-output cell."""

    name = "constant-fold"

    def run(self, netlist: Netlist) -> int:
        changed = 0
        self.touched_nets = set()
        for cell in netlist.topological_cells():
            if cell.cell_type in (CellType.FA, CellType.HA):
                continue
            if cell.cell_type is CellType.BUF and netlist.is_primary_output(
                cell.outputs["y"]
            ):
                # primary-output anchor: retiring it would just re-create it
                continue
            free, const_ports = free_input_nets(cell)
            # untouched cells: all inputs free and distinct (already minimal)
            if not const_ports and len(free) == len(cell_input_ports(cell.cell_type)):
                continue
            if len(free) > 2:
                continue
            tt = cell_truth_tables(cell, free)["y"]
            spec = classify_truth_table(tt)
            if spec is None:
                continue
            replacement = materialize(netlist, spec, free)
            self.touched_nets |= retire_cell(netlist, cell, {"y": replacement})
            changed += 1
        return changed
