"""Netlist optimization subsystem.

A :class:`~repro.opt.manager.PassManager` runs an ordered, fixpoint-iterated
pipeline of rewrite passes over a :class:`~repro.netlist.core.Netlist`:

* :class:`~repro.opt.constant_fold.ConstantFoldPass` — constant folding and
  propagation through every cell type;
* :class:`~repro.opt.strength.StrengthReductionPass` — FA/HA strength
  reduction (an FA with a constant-0 carry-in becomes an HA, ...);
* :class:`~repro.opt.cleanup.CleanupPass` — BUF chain collapsing and
  double-NOT cancellation;
* :class:`~repro.opt.cse.CommonSubexpressionPass` — structural hashing;
* :class:`~repro.opt.dce.DeadCellEliminationPass` — dead cell/net removal
  from the primary outputs.

Every run can be equivalence-checked against the pre-optimization netlist
(bit-parallel, exhaustive for small input widths) and structurally validated
after every pass.  The synthesis flow exposes the pipeline as ``-O`` levels
(``opt_level`` 0/1/2) and ``repro.explore`` sweeps over them.
"""

from repro.opt.base import RewritePass, retire_cell
from repro.opt.cleanup import CleanupPass
from repro.opt.constant_fold import ConstantFoldPass
from repro.opt.cse import CommonSubexpressionPass
from repro.opt.dce import DeadCellEliminationPass
from repro.opt.equivalence import NetlistEquivalenceReport, check_netlists_equivalent
from repro.opt.manager import OPT_LEVELS, PassManager, default_pipeline, optimize_netlist
from repro.opt.report import OptReport, PassStat
from repro.opt.strength import StrengthReductionPass

__all__ = [
    "OPT_LEVELS",
    "CleanupPass",
    "CommonSubexpressionPass",
    "ConstantFoldPass",
    "DeadCellEliminationPass",
    "NetlistEquivalenceReport",
    "OptReport",
    "PassManager",
    "PassStat",
    "RewritePass",
    "StrengthReductionPass",
    "check_netlists_equivalent",
    "default_pipeline",
    "optimize_netlist",
    "retire_cell",
]
