"""The pass manager: ordered, fixpoint-iterated optimization pipelines.

``PassManager`` runs a pipeline of :class:`~repro.opt.base.RewritePass`
instances over a netlist until no pass reports a rewrite (or the iteration
budget runs out), optionally validating structural invariants after every
pass (debug mode) and checking functional equivalence against a snapshot of
the pre-optimization netlist — either once at the end or after every single
pass.

``optimize_netlist`` is the front door used by the synthesis flow and the
CLI: it maps an ``-O`` level to the standard pipeline, runs it and returns
the :class:`~repro.opt.report.OptReport`.

Optimization levels
-------------------

* ``-O0`` — no optimization at all (the paper's as-built netlists);
* ``-O1`` — safe cleanups: constant folding, BUF/NOT cleanup, dead-cell
  elimination;
* ``-O2`` — the full pipeline: ``-O1`` plus FA/HA strength reduction and
  structural hashing (CSE).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Set

from repro import obs
from repro.errors import OptimizationError
from repro.netlist.core import Netlist
from repro.netlist.stats import netlist_stats
from repro.netlist.validate import validate_netlist
from repro.opt.base import RewritePass
from repro.opt.cleanup import CleanupPass
from repro.opt.constant_fold import ConstantFoldPass
from repro.opt.cse import CommonSubexpressionPass
from repro.opt.dce import DeadCellEliminationPass
from repro.opt.equivalence import check_netlists_equivalent
from repro.opt.report import OptReport, PassStat
from repro.opt.strength import StrengthReductionPass

#: the supported ``-O`` levels
OPT_LEVELS = (0, 1, 2)

#: one-line description of the levels, shared by the CLI flag help and the
#: :class:`repro.api.FlowConfig` field metadata (single source of truth)
OPT_LEVEL_HELP = (
    "netlist optimization level: 0 = as built (paper protocol), "
    "1 = safe cleanups, 2 = full pipeline (always equivalence-checked)"
)


def default_pipeline(opt_level: int) -> List[RewritePass]:
    """The standard pass pipeline for an ``-O`` level."""
    if opt_level not in OPT_LEVELS:
        raise OptimizationError(
            f"unknown opt level {opt_level!r}; expected one of {OPT_LEVELS}"
        )
    if opt_level == 0:
        return []
    passes: List[RewritePass] = [ConstantFoldPass()]
    if opt_level >= 2:
        passes.append(StrengthReductionPass())
    passes.append(CleanupPass())
    if opt_level >= 2:
        passes.append(CommonSubexpressionPass())
    passes.append(DeadCellEliminationPass())
    return passes


class PassManager:
    """Run an ordered pass pipeline over a netlist to a fixpoint.

    Parameters
    ----------
    passes:
        The pipeline, run in order within each fixpoint iteration.
    max_iterations:
        Upper bound on fixpoint iterations (each iteration runs the whole
        pipeline once).
    validate:
        Debug mode: run :func:`repro.netlist.validate.validate_netlist`
        after every pass invocation and fail fast on broken invariants.
    check_equivalence:
        Snapshot the netlist before optimizing and verify functional
        equivalence on every primary output afterwards.
    check_each_pass:
        Also check equivalence after *every* pass invocation (slow; implies
        ``check_equivalence``) — pinpoints the exact pass that broke a
        netlist.
    library:
        Optional technology library so the before/after stats carry area.
    timing_library:
        Optional technology library for arrival-time tracking: a full STA
        runs once before the pipeline, then after every fixpoint iteration
        the arrivals are updated *incrementally* from the union of the
        passes' :attr:`~repro.opt.base.RewritePass.touched_nets` — the
        report gains ``delay_before_ns`` / ``delay_after_ns`` at the cost
        of re-propagating only the rewritten cones.
    exhaustive_width_limit / random_vector_count / seed:
        Forwarded to
        :func:`repro.opt.equivalence.check_netlists_equivalent`.
    """

    def __init__(
        self,
        passes: Sequence[RewritePass],
        max_iterations: int = 8,
        validate: bool = False,
        check_equivalence: bool = True,
        check_each_pass: bool = False,
        library: Optional[object] = None,
        exhaustive_width_limit: int = 18,
        random_vector_count: int = 512,
        seed: int = 2000,
        opt_level: int = 2,
        timing_library: Optional[object] = None,
    ) -> None:
        if max_iterations < 1:
            raise OptimizationError("max_iterations must be at least 1")
        self.passes = list(passes)
        self.max_iterations = max_iterations
        self.validate = validate
        self.check_equivalence = check_equivalence or check_each_pass
        self.check_each_pass = check_each_pass
        self.library = library
        self.timing_library = timing_library
        self.exhaustive_width_limit = exhaustive_width_limit
        self.random_vector_count = random_vector_count
        self.seed = seed
        self.opt_level = opt_level

    def _check(self, reference: Netlist, netlist: Netlist, context: str):
        report = check_netlists_equivalent(
            reference,
            netlist,
            exhaustive_width_limit=self.exhaustive_width_limit,
            random_vector_count=self.random_vector_count,
            seed=self.seed,
        )
        if not report.equivalent:
            example = report.mismatches[0] if report.mismatches else {}
            raise OptimizationError(
                f"equivalence broken {context}; first mismatch: {example}"
            )
        return report

    def run(self, netlist: Netlist) -> OptReport:
        """Optimize ``netlist`` in place and return the report."""
        start = time.perf_counter()
        before = netlist_stats(netlist, self.library)
        reference: Optional[Netlist] = None
        if self.check_equivalence:
            reference = netlist.copy(name=f"{netlist.name}_preopt")

        timing = None
        if self.timing_library is not None:
            from repro.timing.arrival import compute_arrival_times

            timing = compute_arrival_times(netlist, self.timing_library)
        delay_before = timing.delay if timing is not None else None

        stats: List[PassStat] = []
        iterations = 0
        converged = not self.passes
        for iteration in range(1, self.max_iterations + 1):
            iterations = iteration
            any_rewrites = False
            iteration_touched: Set[str] = set()
            for rewrite_pass in self.passes:
                cells_before = netlist.num_cells()
                with obs.span(
                    f"opt.{rewrite_pass.name}", iteration=iteration
                ) as pass_span:
                    pass_start = time.perf_counter()
                    rewrites = rewrite_pass.run(netlist)
                    elapsed = time.perf_counter() - pass_start
                    pass_span.set(
                        rewrites=rewrites,
                        cells_before=cells_before,
                        cells_after=netlist.num_cells(),
                    )
                obs.counter("opt.rewrites", rewrites)
                obs.counter(
                    "opt.cells_removed", cells_before - netlist.num_cells()
                )
                touched = set(getattr(rewrite_pass, "touched_nets", ()) or ())
                iteration_touched |= touched
                stats.append(
                    PassStat(
                        pass_name=rewrite_pass.name,
                        iteration=iteration,
                        rewrites=rewrites,
                        cells_before=cells_before,
                        cells_after=netlist.num_cells(),
                        elapsed_s=elapsed,
                        touched_nets=len(touched),
                    )
                )
                if self.validate:
                    validate_netlist(netlist)
                if self.check_each_pass and rewrites and reference is not None:
                    self._check(
                        reference,
                        netlist,
                        f"after pass {rewrite_pass.name!r} (iteration {iteration})",
                    )
                any_rewrites = any_rewrites or rewrites > 0
            if timing is not None and any_rewrites:
                from repro.timing.arrival import compute_arrival_times

                timing = compute_arrival_times(
                    netlist,
                    self.timing_library,
                    previous=timing,
                    changed_nets=iteration_touched,
                )
            if not any_rewrites:
                converged = True
                break

        equivalence = None
        if reference is not None:
            with obs.span("opt.equivalence-check", cells=netlist.num_cells()):
                equivalence = self._check(
                    reference, netlist, "after the full pipeline"
                )

        return OptReport(
            opt_level=self.opt_level,
            iterations=iterations,
            converged=converged,
            before=before,
            after=netlist_stats(netlist, self.library),
            passes=stats,
            equivalence=equivalence,
            validated=self.validate,
            elapsed_s=time.perf_counter() - start,
            delay_before_ns=delay_before,
            delay_after_ns=timing.delay if timing is not None else None,
        )


def optimize_netlist(
    netlist: Netlist,
    opt_level: int = 2,
    library: Optional[object] = None,
    validate: bool = False,
    check_equivalence: bool = True,
    check_each_pass: bool = False,
    max_iterations: int = 8,
    exhaustive_width_limit: int = 18,
    random_vector_count: int = 512,
    seed: int = 2000,
    timing_library: Optional[object] = None,
) -> OptReport:
    """Optimize ``netlist`` in place at the given ``-O`` level.

    Returns the :class:`~repro.opt.report.OptReport`; ``opt_level=0`` is a
    no-op that still reports (identical) before/after statistics.  Pass
    ``timing_library`` to track the design delay across the run with
    incremental re-analysis (see :class:`PassManager`).
    """
    manager = PassManager(
        default_pipeline(opt_level),
        max_iterations=max_iterations,
        validate=validate,
        check_equivalence=check_equivalence and opt_level > 0,
        check_each_pass=check_each_pass and opt_level > 0,
        library=library,
        exhaustive_width_limit=exhaustive_width_limit,
        random_vector_count=random_vector_count,
        seed=seed,
        opt_level=opt_level,
        timing_library=timing_library,
    )
    return manager.run(netlist)
