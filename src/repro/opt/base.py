"""Shared infrastructure for rewrite passes.

A :class:`RewritePass` mutates a netlist in place and reports how many
rewrites it performed; the :class:`~repro.opt.manager.PassManager` iterates a
pipeline of passes to a fixpoint.  This module also provides the two tools
almost every pass is built from:

* :func:`retire_cell` — replace all readers of a cell's outputs with
  equivalent nets and delete the cell, preserving primary-output nets by
  re-driving them with a ``BUF`` (output buses and the netlist interface keep
  their identity across optimization);
* truth-table classification (:func:`cell_truth_tables`,
  :func:`classify_truth_table`, :func:`materialize`) — evaluate a cell's
  boolean function over its non-constant, deduplicated inputs via
  :func:`repro.netlist.cells.evaluate_cell` and recognize when the function
  collapses to a constant, a wire, an inverter or a smaller two-input gate.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import OptimizationError
from repro.netlist.cells import CellType, cell_input_ports, cell_output_ports, evaluate_cell
from repro.netlist.core import Cell, Net, Netlist


class RewritePass:
    """Base class for netlist rewrite passes.

    Subclasses set :attr:`name` and implement :meth:`run`, returning the
    number of rewrites applied (0 means the pass is at a fixpoint).  A pass
    that rewires nets should clear :attr:`touched_nets` at the start of
    :meth:`run` and record the rewired nets' names — the pass manager feeds
    the union into incremental timing re-analysis, so an empty set is a
    claim that no net changed value or topology.  :func:`retire_cell`
    returns the touched set for the common rewrite shape; passes ``|=`` it.
    """

    name = "rewrite"

    def __init__(self) -> None:
        #: names of nets this pass rewired/re-drove during its last run
        self.touched_nets: Set[str] = set()

    def run(self, netlist: Netlist) -> int:
        raise NotImplementedError


def retire_cell(
    netlist: Netlist, cell: Cell, replacements: Mapping[str, Net]
) -> Set[str]:
    """Remove ``cell``, rerouting every reader of each output to a new net.

    ``replacements`` maps every output port of the cell to the net that now
    carries the same value.  Primary-output nets are never renamed or
    dropped: when a retired cell drove one, the net is re-driven by a ``BUF``
    of its replacement so the netlist interface (and every output bus) stays
    intact.

    Returns the names of the nets whose driver or readers changed — the old
    output nets and their replacements — for the caller's
    :attr:`RewritePass.touched_nets` bookkeeping.
    """
    ports = cell_output_ports(cell.cell_type)
    missing = [p for p in ports if p not in replacements]
    if missing:
        raise OptimizationError(
            f"retire_cell({cell.name!r}): no replacement for output port(s) {missing}"
        )
    rebind: List[Tuple[Net, Net]] = []
    touched: Set[str] = set()
    for port in ports:
        old = cell.outputs[port]
        new = replacements[port]
        if new is old:
            raise OptimizationError(
                f"retire_cell({cell.name!r}): output {port!r} replaced by itself"
            )
        netlist.replace_net_uses(old, new)
        touched.add(old.name)
        touched.add(new.name)
        if netlist.is_primary_output(old):
            rebind.append((old, new))
    netlist.remove_cell(cell)
    for old, new in rebind:
        netlist.add_cell(CellType.BUF, {"a": new}, outputs={"y": old})
    return touched


# ------------------------------------------------------------- truth tables

#: two-input gate types a truth table can be strength-reduced to
_TWO_INPUT_GATES = (
    CellType.AND2,
    CellType.OR2,
    CellType.XOR2,
    CellType.NAND2,
    CellType.NOR2,
    CellType.XNOR2,
)

#: truth table of each two-input gate over (v0, v1) with v0 as bit 0
_GATE_TABLES: Dict[Tuple[int, int, int, int], CellType] = {
    tuple(
        evaluate_cell(gate, {"a": i & 1, "b": (i >> 1) & 1})["y"] for i in range(4)
    ): gate
    for gate in _TWO_INPUT_GATES
}


def free_input_nets(cell: Cell) -> Tuple[List[Net], Dict[str, object]]:
    """Split a cell's inputs into distinct free nets and constant bindings.

    Returns ``(free_nets, const_ports)`` where ``free_nets`` lists the
    distinct non-constant input nets in port order and ``const_ports`` maps
    input port names to their constant 0/1 values.
    """
    free: List[Net] = []
    const_ports: Dict[str, object] = {}
    for port in cell_input_ports(cell.cell_type):
        net = cell.inputs[port]
        if net.is_constant:
            const_ports[port] = int(net.const_value or 0)
        elif all(net is not seen for seen in free):
            free.append(net)
    return free, const_ports


def cell_truth_tables(cell: Cell, free: List[Net]) -> Dict[str, Tuple[int, ...]]:
    """Truth table of every output over the distinct free input nets.

    Combination ``i`` assigns bit ``(i >> k) & 1`` to ``free[k]``; constant
    inputs keep their constant value.  Only call with ``len(free) <= 3``
    (8 combinations at most).
    """
    ports = cell_input_ports(cell.cell_type)
    tables: Dict[str, List[int]] = {p: [] for p in cell_output_ports(cell.cell_type)}
    for i in range(1 << len(free)):
        assignment = {}
        for port in ports:
            net = cell.inputs[port]
            if net.is_constant:
                assignment[port] = int(net.const_value or 0)
            else:
                index = next(k for k, f in enumerate(free) if f is net)
                assignment[port] = (i >> index) & 1
        for out_port, value in evaluate_cell(cell.cell_type, assignment).items():
            tables[out_port].append(value)
    return {port: tuple(values) for port, values in tables.items()}


def classify_truth_table(tt: Tuple[int, ...]) -> Optional[Tuple[str, object]]:
    """Recognize a simpler form of a 1- to 3-variable truth table.

    Returns one of ``("const", 0/1)``, ``("var", k)``, ``("not", k)``,
    ``("gate", (CellType, i, j))`` (a two-input gate over variables ``i``
    and ``j``) or ``None`` when the function genuinely needs three
    variables or is a two-variable function outside the supported gate set.
    """
    if all(v == tt[0] for v in tt):
        return ("const", tt[0])
    nvars = len(tt).bit_length() - 1
    for k in range(nvars):
        projected = tuple(tt[i] for i in range(len(tt)) if not (i >> k) & 1)
        inverse = tuple(tt[i] for i in range(len(tt)) if (i >> k) & 1)
        if projected == inverse:  # does not depend on variable k at all
            reduced = classify_truth_table(projected)
            if reduced is None:
                return None
            kind, arg = reduced
            # renumber the surviving variables back past the eliminated one
            if kind in ("var", "not"):
                arg = int(arg) + (1 if int(arg) >= k else 0)
            elif kind == "gate":
                gate, i, j = arg  # type: ignore[misc]
                arg = (
                    gate,
                    i + (1 if i >= k else 0),
                    j + (1 if j >= k else 0),
                )
            return (kind, arg)
    if nvars == 1:
        return ("var", 0) if tt == (0, 1) else ("not", 0)
    if nvars == 2:
        gate = _GATE_TABLES.get(tuple(tt))
        if gate is not None:
            return ("gate", (gate, 0, 1))
    return None


def materialize(netlist: Netlist, spec: Tuple[str, object], free: List[Net]) -> Net:
    """Build the net computing a classified function of the free nets."""
    kind, arg = spec
    if kind == "const":
        return netlist.const(int(arg))  # type: ignore[arg-type]
    if kind == "var":
        return free[int(arg)]  # type: ignore[arg-type]
    if kind == "not":
        return netlist.add_cell(CellType.NOT, {"a": free[int(arg)]}).outputs["y"]  # type: ignore[arg-type]
    if kind == "gate":
        gate, i, j = arg  # type: ignore[misc]
        cell = netlist.add_cell(gate, {"a": free[i], "b": free[j]})
        return cell.outputs["y"]
    raise OptimizationError(f"unknown function spec {spec!r}")  # pragma: no cover
