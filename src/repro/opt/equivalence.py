"""Netlist-vs-netlist equivalence checking.

Unlike :mod:`repro.sim.equivalence` (netlist vs. word-level expression),
this checker compares two *netlists* bit-for-bit on every primary output —
the contract every optimization pass must preserve.  Each netlist is
compiled once into a :class:`repro.sim.program.SimProgram` and the program
is replayed for every chunk, with the input stimulus built directly in
packed form (exhaustive patterns are periodic bit masks, random ones a
``getrandbits`` word per input) so no per-vector dicts — and no per-chunk
topological re-sorts — are ever materialized.  Up to
``exhaustive_width_limit`` primary-input bits the check tries every input
combination, above it a seeded random sample is used.  Vectors are
processed in power-of-two chunks so exhaustive checks of ~20 input bits
stay within bounded memory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import OptimizationError
from repro.netlist.core import Netlist
from repro.sim.program import cached_program


@dataclass
class NetlistEquivalenceReport:
    """Outcome of a netlist-vs-netlist equivalence check."""

    equivalent: bool
    vectors_checked: int
    exhaustive: bool
    mismatches: List[Dict[str, object]] = field(default_factory=list)

    def assert_ok(self) -> None:
        """Raise :class:`OptimizationError` when the check failed."""
        if not self.equivalent:
            example = self.mismatches[0] if self.mismatches else {}
            raise OptimizationError(
                f"optimized netlist is not equivalent to the original; "
                f"first mismatch: {example}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-able record for reports and artifacts."""
        return {
            "equivalent": self.equivalent,
            "vectors_checked": self.vectors_checked,
            "exhaustive": self.exhaustive,
            "mismatches": list(self.mismatches),
        }


def _packed_exhaustive_chunk(
    names: List[str], start: int, count: int
) -> Dict[str, int]:
    """Packed input words for vectors ``start .. start+count-1`` of the
    exhaustive enumeration (input ``names[i]`` carries bit ``i`` of the
    vector index).

    Requires ``count`` to be a power of two and ``start`` a multiple of it,
    so low bits are exact periodic patterns and high bits are constant over
    the chunk.
    """
    mask = (1 << count) - 1
    words: Dict[str, int] = {}
    for i, name in enumerate(names):
        half = 1 << i
        if half >= count:
            words[name] = mask if (start >> i) & 1 else 0
        else:
            period = half << 1
            base = ((1 << half) - 1) << half  # one period: half 0s, half 1s
            repunit = ((1 << count) - 1) // ((1 << period) - 1)
            words[name] = base * repunit
    return words


def check_netlists_equivalent(
    reference: Netlist,
    candidate: Netlist,
    exhaustive_width_limit: int = 18,
    random_vector_count: int = 512,
    seed: int = 2000,
    chunk_size: int = 8192,
    max_mismatches: int = 5,
) -> NetlistEquivalenceReport:
    """Check that ``candidate`` matches ``reference`` on every primary output.

    Both netlists must expose identical primary input and primary output net
    names (the optimizer preserves both).  With at most
    ``exhaustive_width_limit`` primary-input bits every combination is
    checked; otherwise ``random_vector_count`` seeded random vectors are
    used.  Evaluation happens in ``chunk_size`` batches (rounded down to a
    power of two) through the bit-parallel evaluator, with the stimulus
    built directly as packed words.
    """
    ref_pis = [net.name for net in reference.primary_inputs]
    cand_pis = {net.name for net in candidate.primary_inputs}
    if set(ref_pis) != cand_pis:
        raise OptimizationError(
            f"primary inputs differ: {sorted(set(ref_pis) ^ cand_pis)}"
        )
    ref_pos = [net.name for net in reference.primary_outputs]
    cand_pos = {net.name for net in candidate.primary_outputs}
    if set(ref_pos) != cand_pos:
        raise OptimizationError(
            f"primary outputs differ: {sorted(set(ref_pos) ^ cand_pos)}"
        )

    width = len(ref_pis)
    exhaustive = width <= exhaustive_width_limit
    total = (1 << width) if exhaustive else random_vector_count
    # power-of-two chunks keep the exhaustive bit patterns chunk-aligned
    chunk_size = 1 << (max(1, chunk_size).bit_length() - 1)
    rng = random.Random(seed)

    # compile both netlists once; every chunk below is a straight replay
    ref_program = cached_program(reference)
    cand_program = cached_program(candidate)
    ref_po_slots = [ref_program.slot_of[po] for po in ref_pos]
    cand_po_slots = [cand_program.slot_of[po] for po in ref_pos]

    mismatches: List[Dict[str, object]] = []
    checked = 0
    for start in range(0, total, chunk_size):
        count = min(chunk_size, total - start)
        if exhaustive:
            words = _packed_exhaustive_chunk(ref_pis, start, count)
        else:
            words = {name: rng.getrandbits(count) for name in ref_pis}
        mask = (1 << count) - 1
        ref_slots = ref_program.run_packed(words, mask)
        cand_slots = cand_program.run_packed(words, mask)
        checked += count
        for po, ref_slot, cand_slot in zip(ref_pos, ref_po_slots, cand_po_slots):
            ref_word = ref_slots[ref_slot]
            difference = ref_word ^ cand_slots[cand_slot]
            while difference and len(mismatches) < max_mismatches:
                index = (difference & -difference).bit_length() - 1
                difference &= difference - 1
                expected = (ref_word >> index) & 1
                mismatches.append(
                    {
                        "net": po,
                        "inputs": {
                            name: (words[name] >> index) & 1 for name in ref_pis
                        },
                        "expected": expected,
                        "produced": expected ^ 1,
                    }
                )
        if len(mismatches) >= max_mismatches:
            break

    return NetlistEquivalenceReport(
        equivalent=not mismatches,
        vectors_checked=checked,
        exhaustive=exhaustive,
        mismatches=mismatches,
    )
