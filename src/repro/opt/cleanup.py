"""Wire-level cleanups: BUF chain collapsing and double-NOT cancellation.

* every ``BUF`` whose output is not a primary output is transparent — its
  readers are rewired straight to its input (chains collapse across the pass
  manager's fixpoint iterations);
* ``NOT(NOT(x))`` cancels: readers of the outer inverter are rewired to
  ``x`` (the inner inverter dies in dead-cell elimination once its remaining
  fanout is gone).

BUFs that drive primary outputs are kept: they are the anchors that preserve
the netlist interface when an output's original driver was optimized away.
"""

from __future__ import annotations

from repro.netlist.cells import CellType
from repro.netlist.core import Netlist
from repro.opt.base import RewritePass, retire_cell


class CleanupPass(RewritePass):
    """Collapse BUF chains and cancel double inverters."""

    name = "buf-not-cleanup"

    def run(self, netlist: Netlist) -> int:
        changed = 0
        self.touched_nets = set()
        for cell in netlist.topological_cells():
            if cell.cell_type is CellType.BUF:
                if netlist.is_primary_output(cell.outputs["y"]):
                    continue
                self.touched_nets |= retire_cell(
                    netlist, cell, {"y": cell.inputs["a"]}
                )
                changed += 1
            elif cell.cell_type is CellType.NOT:
                driver = cell.inputs["a"].driver
                if driver is None or driver[0].cell_type is not CellType.NOT:
                    continue
                self.touched_nets |= retire_cell(
                    netlist, cell, {"y": driver[0].inputs["a"]}
                )
                changed += 1
        return changed
