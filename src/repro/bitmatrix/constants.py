"""Handling of constant contributions to the addend matrix.

All constant contributions of an expression — literal constant terms, the
``+1`` corrections of two's-complement negation, Booth recoding corrections —
are accumulated into a single integer, reduced modulo ``2**width`` and then
materialised as constant-1 addends at the columns where the reduced value has
a 1 bit.  This minimises the number of constant rows in the matrix.
"""

from __future__ import annotations

from typing import List

from repro.bitmatrix.addend import Addend
from repro.netlist.core import Netlist
from repro.utils.bits import columns_of_constant


def constant_addend_columns(value: int, width: int) -> List[int]:
    """Columns at which ``value mod 2**width`` contributes a constant 1."""
    return columns_of_constant(value, width)


def constant_addends(
    netlist: Netlist,
    value: int,
    width: int,
    origin: str = "const",
) -> List[Addend]:
    """Materialise ``value mod 2**width`` as constant-1 addends.

    Constant bits have arrival time 0 and probability 1 (they never switch),
    which makes them the first addends FA_ALP picks — exactly the behaviour
    the paper's ``SC_LP`` intends for "logic value" inputs.
    """
    addends: List[Addend] = []
    for column in constant_addend_columns(value, width):
        addends.append(
            Addend(
                net=netlist.const(1),
                column=column,
                arrival=0.0,
                probability=1.0,
                origin=origin,
            )
        )
    return addends
