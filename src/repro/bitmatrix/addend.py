"""The :class:`Addend` record — one single-bit operand of the addend matrix.

An addend couples a netlist net with the data the allocation algorithms need:
its bit column (weight), its arrival time (for FA_AOT) and its signal
probability (for FA_ALP).  Addends are created by the matrix builder for
primary-input bits, partial-product bits, inverted bits and constants, and by
the compressor-tree builder for FA/HA sum and carry outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.netlist.core import Net

_addend_ids = count()


@dataclass
class Addend:
    """A single-bit addend of the matrix.

    Attributes
    ----------
    net:
        The netlist net carrying the bit.
    column:
        Bit weight: the addend contributes ``bit * 2**column`` to the result.
    arrival:
        Arrival time of the bit (allocation-time delay model units, ns).
    probability:
        Probability that the bit is 1 (paper's p(x)).
    origin:
        Free-form provenance label ("input", "pp", "const", "sum", "carry",
        "not"), used by reports and by the column-isolation baseline which
        must distinguish original column addends from generated carries.
    sequence:
        Monotonically increasing creation index; used as the deterministic
        final tie-break so that allocation results are reproducible.
    row:
        Word-level row identifier assigned by the matrix builder (all addends
        coming from the same term/shift share a row).  Used by the word-level
        CSA_OPT baseline, which must allocate carry-save adders per word
        rather than per bit; -1 when the addend belongs to no word.
    """

    net: Net
    column: int
    arrival: float = 0.0
    probability: float = 0.5
    origin: str = "input"
    sequence: int = field(default_factory=lambda: next(_addend_ids))
    row: int = -1

    @property
    def q_value(self) -> float:
        """The paper's q(x) = p(x) - 0.5."""
        return self.probability - 0.5

    @property
    def switching(self) -> float:
        """Switching activity p(1-p) of the bit."""
        return self.probability * (1.0 - self.probability)

    @property
    def is_constant(self) -> bool:
        """True when the addend is a constant 0/1 net."""
        return self.net.is_constant

    def shifted(self, delta: int) -> "Addend":
        """Copy of this addend moved ``delta`` columns to the left."""
        return Addend(
            net=self.net,
            column=self.column + delta,
            arrival=self.arrival,
            probability=self.probability,
            origin=self.origin,
            row=self.row,
        )

    def describe(self) -> str:
        """Short human-readable description used in traces and examples."""
        return (
            f"{self.net.name}@col{self.column}"
            f"(t={self.arrival:g}, p={self.probability:g}, {self.origin})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Addend({self.describe()})"


def reset_addend_sequence() -> None:
    """Reset the global creation counter (used by tests for determinism)."""
    global _addend_ids
    _addend_ids = count()
