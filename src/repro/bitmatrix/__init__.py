"""Bit-level addend matrix construction.

The addend matrix is the paper's central data structure: one column per bit
weight, each column holding the single-bit addends (input bits, partial
products, constants, inverted bits of subtracted terms) that must be summed at
that weight.  The compressor-tree algorithms in :mod:`repro.core` reduce this
matrix to two rows.
"""

from repro.bitmatrix.addend import Addend
from repro.bitmatrix.matrix import AddendMatrix
from repro.bitmatrix.builder import MatrixBuildResult, build_addend_matrix
from repro.bitmatrix.partial_products import and_array_product
from repro.bitmatrix.booth import booth_partial_products
from repro.bitmatrix.constants import constant_addend_columns

__all__ = [
    "Addend",
    "AddendMatrix",
    "MatrixBuildResult",
    "build_addend_matrix",
    "and_array_product",
    "booth_partial_products",
    "constant_addend_columns",
]
