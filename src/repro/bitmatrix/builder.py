"""Flattening an arithmetic expression into a netlist plus addend matrix.

This is the front half of the paper's one-step synthesis flow: the expression
is lowered to a sum of products (:mod:`repro.expr.lowering`), every product is
expanded into single-bit partial products, subtracted terms are rewritten with
two's-complement identities, and all constant contributions are folded into a
single constant.  The output is a :class:`~repro.bitmatrix.matrix.AddendMatrix`
whose addends reference nets of a freshly built :class:`~repro.netlist.core.Netlist`
(primary inputs, AND-array partial products and inverters), ready for
compressor-tree allocation.

Negative contributions use the per-bit identity

    -b * 2**c  ==  (1 - b) * 2**c - 2**c      (mod 2**width)

so a subtracted bit becomes an inverted addend plus a constant correction that
is folded with all other constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bitmatrix.addend import Addend
from repro.bitmatrix.booth import booth_partial_products
from repro.bitmatrix.constants import constant_addends
from repro.bitmatrix.matrix import AddendMatrix
from repro.bitmatrix.partial_products import (
    BitSignal,
    ProductBit,
    ProductBitFactory,
    and_array_product,
)
from repro.errors import AllocationError, DesignError
from repro.expr.ast import Expression
from repro.expr.lowering import Term, lower_to_terms
from repro.expr.signals import SignalSpec
from repro.netlist.core import Bus, Netlist
from repro.tech.library import TechLibrary
from repro.utils.bits import csd_digits


@dataclass
class MatrixBuildResult:
    """Everything produced by :func:`build_addend_matrix`."""

    netlist: Netlist
    matrix: AddendMatrix
    input_buses: Dict[str, Bus]
    terms: List[Term]
    signals: Dict[str, SignalSpec]
    output_width: int
    constant_total: int = 0
    and_gates: int = 0
    not_gates: int = 0
    dropped_addends: int = 0
    notes: List[str] = field(default_factory=list)

    def initial_heights(self) -> List[int]:
        """Per-column addend counts of the freshly built matrix."""
        return self.matrix.heights()


def _folded_square_product(
    factory: ProductBitFactory,
    bits: List[BitSignal],
    max_column: int,
) -> List[ProductBit]:
    """Partial products of ``x*x`` with the symmetric pairs folded.

    ``x^2 = sum_i x_i 4^i + sum_{i<j} x_i x_j 2^(i+j+1)`` — the diagonal terms
    need no gate at all and every off-diagonal pair appears once, shifted one
    column left, instead of twice.
    """
    products: List[ProductBit] = []
    for i, bit in enumerate(bits):
        if 2 * i < max_column:
            products.append(ProductBit(2 * i, bit))
    for i in range(len(bits)):
        for j in range(i + 1, len(bits)):
            column = i + j + 1
            if column >= max_column:
                continue
            products.append(ProductBit(column, factory.and_of(bits[i], bits[j])))
    return products


def _coefficient_digits(magnitude: int, use_csd: bool) -> List[Tuple[int, int]]:
    """Decompose a positive coefficient into (shift, digit) pairs.

    Binary decomposition yields digits in {+1}; CSD yields digits in {-1, +1}
    with fewer non-zero entries for coefficients such as 7 or 30.
    """
    if magnitude <= 0:
        raise AllocationError(f"coefficient magnitude must be positive, got {magnitude}")
    if use_csd:
        return [(shift, digit) for shift, digit in enumerate(csd_digits(magnitude)) if digit]
    return [(shift, 1) for shift in range(magnitude.bit_length()) if (magnitude >> shift) & 1]


def build_addend_matrix(
    expression: Expression,
    signals: Mapping[str, SignalSpec],
    output_width: int,
    library: Optional[TechLibrary] = None,
    name: str = "datapath",
    use_csd_coefficients: bool = False,
    terms: Optional[Sequence[Term]] = None,
    multiplication_style: str = "and_array",
    fold_square_products: bool = False,
) -> MatrixBuildResult:
    """Flatten ``expression`` into a netlist and an addend matrix.

    Parameters
    ----------
    expression:
        The arithmetic expression (additions, subtractions, multiplications).
    signals:
        A :class:`SignalSpec` per variable used by the expression.
    output_width:
        Result width W; all arithmetic is modulo ``2**W``.
    library:
        Technology library used to annotate partial-product/inverter delays;
        defaults to :func:`repro.tech.generic_035`.
    use_csd_coefficients:
        Recode constant coefficients in canonical signed-digit form (fewer
        addend rows for coefficients like 7, at the cost of inverters).
    terms:
        Pre-lowered term list; when omitted the expression is lowered here.
    multiplication_style:
        ``"and_array"`` (the paper's scheme) or ``"booth"`` — radix-4 Booth
        recoding for two-operand products (higher-degree products always use
        the AND array).
    fold_square_products:
        Optional optimization beyond the paper: for square terms ``x*x`` the
        symmetric partial products ``x_i·x_j`` and ``x_j·x_i`` (i < j) are
        folded into a single addend one column to the left
        (``2·x_i·x_j·2^(i+j) = x_i·x_j·2^(i+j+1)``), and the diagonal terms
        degenerate to ``x_i`` — roughly halving the addend count of squarers.
    """
    if multiplication_style not in ("and_array", "booth"):
        raise DesignError(
            f"unknown multiplication_style {multiplication_style!r}; "
            f"expected 'and_array' or 'booth'"
        )
    if library is None:
        from repro.tech.default_libs import generic_035

        library = generic_035()
    if output_width <= 0:
        raise DesignError(f"output width must be positive, got {output_width}")

    term_list = list(terms) if terms is not None else lower_to_terms(expression)
    variable_order = expression.variables()
    for variable in variable_order:
        if variable not in signals:
            raise DesignError(f"expression uses variable {variable!r} with no SignalSpec")

    netlist = Netlist(name)
    factory = ProductBitFactory(netlist, library)
    matrix = AddendMatrix(output_width, name=f"{name}_matrix")

    # Primary inputs: one bus per variable, with per-bit annotations.
    input_buses: Dict[str, Bus] = {}
    variable_bits: Dict[str, List[BitSignal]] = {}
    for variable in variable_order:
        spec = signals[variable]
        bus = netlist.add_input_bus(variable, spec.width)
        input_buses[variable] = bus
        bits: List[BitSignal] = []
        for index, net in enumerate(bus.nets):
            arrival = spec.arrival_of(index)
            probability = spec.probability_of(index)
            net.attributes["arrival"] = arrival
            net.attributes["probability"] = probability
            bits.append(BitSignal(net, arrival, probability))
        variable_bits[variable] = bits

    constant_total = 0
    dropped = 0
    notes: List[str] = []
    next_row = 0

    for term in term_list:
        if term.is_constant:
            constant_total += term.coefficient
            continue

        sign = 1 if term.coefficient > 0 else -1
        magnitude = abs(term.coefficient)
        operand_bits = [variable_bits[factor] for factor in term.factors]
        booth_constant = 0
        is_square = len(term.factors) == 2 and term.factors[0] == term.factors[1]
        if fold_square_products and is_square:
            product_bits = _folded_square_product(
                factory, operand_bits[0], max_column=output_width
            )
        elif multiplication_style == "booth" and len(term.factors) == 2:
            product_bits, booth_constant = booth_partial_products(
                factory, operand_bits[0], operand_bits[1], max_column=output_width
            )
        else:
            product_bits = and_array_product(
                factory, operand_bits, max_column=output_width
            )

        for shift, digit in _coefficient_digits(magnitude, use_csd_coefficients):
            effective_sign = sign * digit
            constant_total += effective_sign * (booth_constant << shift)
            row_id = next_row
            next_row += 1
            for product in product_bits:
                column = product.column + shift
                if column >= output_width:
                    dropped += 1
                    continue
                signal = product.signal
                if effective_sign > 0:
                    added = matrix.add(
                        Addend(
                            net=signal.net,
                            column=column,
                            arrival=signal.arrival,
                            probability=signal.probability,
                            origin="pp" if len(term.factors) > 1 else "input",
                            row=row_id,
                        )
                    )
                else:
                    inverted = factory.not_of(signal)
                    added = matrix.add(
                        Addend(
                            net=inverted.net,
                            column=column,
                            arrival=inverted.arrival,
                            probability=inverted.probability,
                            origin="not",
                            row=row_id,
                        )
                    )
                    constant_total -= 1 << column
                if not added:
                    dropped += 1

    # Fold every constant contribution into constant-1 addends.
    if constant_total % (1 << output_width) != 0:
        const_bits = constant_addends(netlist, constant_total, output_width)
        for addend in const_bits:
            addend.row = next_row
        next_row += 1
        matrix.extend(const_bits)

    if dropped:
        notes.append(
            f"{dropped} partial-product bits fell outside the {output_width}-bit "
            f"output and were dropped (modulo-2**W semantics)"
        )

    return MatrixBuildResult(
        netlist=netlist,
        matrix=matrix,
        input_buses=input_buses,
        terms=term_list,
        signals={v: signals[v] for v in variable_order},
        output_width=output_width,
        constant_total=constant_total,
        and_gates=factory.and_gates_created,
        not_gates=factory.not_gates_created,
        dropped_addends=dropped,
        notes=notes,
    )
