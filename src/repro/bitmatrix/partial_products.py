"""Partial-product generation for products of operands (AND-array style).

For a product of k operands, every combination of one bit per operand yields a
single-bit partial product: ``x_i * y_j * z_k`` contributes at column
``i + j + k`` and is realised as an AND tree over the participating bits.
This generalises the classic two-operand AND array to the k-operand products
that appear once a whole expression (e.g. ``x**3``) is flattened.

A :class:`ProductBitFactory` caches AND results so that repeated bit pairs
(squares, or coefficients with several non-zero digits reusing the same
product) do not duplicate gates, and it propagates arrival times and signal
probabilities through the gates it creates so the allocation algorithms see
correct per-addend data.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.errors import AllocationError
from repro.netlist.cells import CellType
from repro.netlist.core import Net, Netlist
from repro.tech.library import TechLibrary


class BitSignal(NamedTuple):
    """A single-bit signal with allocation-time annotations."""

    net: Net
    arrival: float
    probability: float


class ProductBit(NamedTuple):
    """One partial-product bit: its column (weight) and its signal."""

    column: int
    signal: BitSignal


class ProductBitFactory:
    """Creates AND-tree product bits in a netlist, with gate sharing."""

    def __init__(self, netlist: Netlist, library: TechLibrary) -> None:
        self.netlist = netlist
        self.library = library
        self._and_cache: Dict[frozenset, BitSignal] = {}
        self._not_cache: Dict[str, BitSignal] = {}
        self.and_gates_created = 0
        self.not_gates_created = 0

    # ----------------------------------------------------------------- gates
    def and_of(self, first: BitSignal, second: BitSignal) -> BitSignal:
        """AND of two bit signals (cached, commutative, idempotent)."""
        if first.net is second.net:
            return first
        # Constant folding keeps the matrix free of degenerate gates.
        if first.net.is_constant:
            return second if first.net.const_value == 1 else self.constant(0)
        if second.net.is_constant:
            return first if second.net.const_value == 1 else self.constant(0)

        key = frozenset((first.net.name, second.net.name))
        if key in self._and_cache:
            return self._and_cache[key]

        cell = self.netlist.add_cell(
            CellType.AND2, {"a": first.net, "b": second.net}, output_prefix="pp_"
        )
        delay = self.library.worst_delay(CellType.AND2, "y")
        signal = BitSignal(
            net=cell.outputs["y"],
            arrival=max(first.arrival, second.arrival) + delay,
            probability=first.probability * second.probability,
        )
        self._and_cache[key] = signal
        self.and_gates_created += 1
        return signal

    def not_of(self, signal: BitSignal) -> BitSignal:
        """NOT of a bit signal (cached); used for subtracted terms."""
        if signal.net.is_constant:
            return self.constant(1 - (signal.net.const_value or 0))
        if signal.net.name in self._not_cache:
            return self._not_cache[signal.net.name]
        cell = self.netlist.add_cell(CellType.NOT, {"a": signal.net}, output_prefix="inv_")
        delay = self.library.worst_delay(CellType.NOT, "y")
        inverted = BitSignal(
            net=cell.outputs["y"],
            arrival=signal.arrival + delay,
            probability=1.0 - signal.probability,
        )
        self._not_cache[signal.net.name] = inverted
        self.not_gates_created += 1
        return inverted

    def or_of(self, first: BitSignal, second: BitSignal) -> BitSignal:
        """OR of two bit signals (with constant folding); used by Booth encoding."""
        if first.net is second.net:
            return first
        if first.net.is_constant:
            return self.constant(1) if first.net.const_value == 1 else second
        if second.net.is_constant:
            return self.constant(1) if second.net.const_value == 1 else first
        cell = self.netlist.add_cell(
            CellType.OR2, {"a": first.net, "b": second.net}, output_prefix="pp_or_"
        )
        delay = self.library.worst_delay(CellType.OR2, "y")
        p_or = first.probability + second.probability - first.probability * second.probability
        return BitSignal(
            net=cell.outputs["y"],
            arrival=max(first.arrival, second.arrival) + delay,
            probability=p_or,
        )

    def xor_of(self, first: BitSignal, second: BitSignal) -> BitSignal:
        """XOR of two bit signals (with constant folding); used by Booth encoding."""
        if first.net is second.net:
            return self.constant(0)
        if first.net.is_constant:
            return second if first.net.const_value == 0 else self.not_of(second)
        if second.net.is_constant:
            return first if second.net.const_value == 0 else self.not_of(first)
        cell = self.netlist.add_cell(
            CellType.XOR2, {"a": first.net, "b": second.net}, output_prefix="pp_xor_"
        )
        delay = self.library.worst_delay(CellType.XOR2, "y")
        p_xor = (
            first.probability
            + second.probability
            - 2.0 * first.probability * second.probability
        )
        return BitSignal(
            net=cell.outputs["y"],
            arrival=max(first.arrival, second.arrival) + delay,
            probability=p_xor,
        )

    def constant(self, value: int) -> BitSignal:
        """Constant 0/1 as a bit signal."""
        return BitSignal(self.netlist.const(value), 0.0, float(value))

    # -------------------------------------------------------------- products
    def product_of(self, bits: Sequence[BitSignal]) -> BitSignal:
        """AND of an arbitrary number of bit signals, built as a balanced tree."""
        if not bits:
            raise AllocationError("cannot take the product of zero bits")
        level: List[BitSignal] = list(bits)
        while len(level) > 1:
            next_level: List[BitSignal] = []
            for index in range(0, len(level) - 1, 2):
                next_level.append(self.and_of(level[index], level[index + 1]))
            if len(level) % 2:
                next_level.append(level[-1])
            level = next_level
        return level[0]


def and_array_product(
    factory: ProductBitFactory,
    operand_bits: Sequence[Sequence[BitSignal]],
    max_column: int,
) -> List[ProductBit]:
    """All partial-product bits of the product of the given operands.

    ``operand_bits`` holds one LSB-first bit list per operand.  Partial
    products whose column would be ``>= max_column`` are not generated (they
    cannot affect a result truncated to ``max_column`` bits), which keeps the
    gate count of wide products bounded.
    """
    if not operand_bits:
        raise AllocationError("and_array_product requires at least one operand")

    products: List[ProductBit] = []

    def recurse(operand_index: int, column: int, chosen: Tuple[BitSignal, ...]) -> None:
        if column >= max_column:
            return
        if operand_index == len(operand_bits):
            signal = factory.product_of(chosen) if len(chosen) > 1 else chosen[0]
            products.append(ProductBit(column=column, signal=signal))
            return
        for bit_index, bit in enumerate(operand_bits[operand_index]):
            recurse(operand_index + 1, column + bit_index, chosen + (bit,))

    recurse(0, 0, ())
    return products
