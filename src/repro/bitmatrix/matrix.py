"""The addend matrix: columns of single-bit addends indexed by bit weight."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.bitmatrix.addend import Addend
from repro.errors import AllocationError


class AddendMatrix:
    """A fixed-width matrix of addend columns.

    The matrix models arithmetic modulo ``2**width``: addends whose column is
    ``>= width`` are silently discarded by :meth:`add` (they cannot influence
    the truncated result), which keeps compressor trees from growing columns
    the final adder would ignore anyway.
    """

    def __init__(self, width: int, name: str = "matrix") -> None:
        if width <= 0:
            raise AllocationError(f"matrix width must be positive, got {width}")
        self.width = width
        self.name = name
        self._columns: List[List[Addend]] = [[] for _ in range(width)]

    # ------------------------------------------------------------------ build
    def add(self, addend: Addend) -> bool:
        """Add an addend; returns False when it falls outside the width."""
        if addend.column < 0:
            raise AllocationError(f"addend {addend.describe()} has negative column")
        if addend.column >= self.width:
            return False
        self._columns[addend.column].append(addend)
        return True

    def extend(self, addends: List[Addend]) -> int:
        """Add many addends; returns how many were inside the width."""
        return sum(1 for addend in addends if self.add(addend))

    # ----------------------------------------------------------------- access
    def column(self, index: int) -> List[Addend]:
        """The (mutable) list of addends in column ``index``."""
        if not 0 <= index < self.width:
            raise AllocationError(f"column {index} outside matrix width {self.width}")
        return self._columns[index]

    def columns(self) -> List[List[Addend]]:
        """All columns, LSB first (the lists are the live column objects)."""
        return self._columns

    def __iter__(self) -> Iterator[List[Addend]]:
        return iter(self._columns)

    def height(self, index: int) -> int:
        """Number of addends currently in column ``index``."""
        return len(self.column(index))

    def max_height(self) -> int:
        """Height of the tallest column."""
        return max((len(col) for col in self._columns), default=0)

    def total_addends(self) -> int:
        """Total number of addends across all columns."""
        return sum(len(col) for col in self._columns)

    def heights(self) -> List[int]:
        """Per-column heights, LSB first."""
        return [len(col) for col in self._columns]

    def is_reduced(self) -> bool:
        """True when every column holds at most two addends."""
        return all(len(col) <= 2 for col in self._columns)

    def copy(self) -> "AddendMatrix":
        """Shallow copy (columns are new lists; addends are shared)."""
        clone = AddendMatrix(self.width, name=self.name)
        for index, column in enumerate(self._columns):
            clone._columns[index] = list(column)
        return clone

    # ------------------------------------------------------------- inspection
    def expected_value(self) -> Dict[str, float]:
        """Expected numeric value and switching summary (for diagnostics)."""
        expected = 0.0
        switching = 0.0
        for index, column in enumerate(self._columns):
            for addend in column:
                expected += addend.probability * (1 << index)
                switching += addend.switching
        return {"expected_value": expected, "total_input_switching": switching}

    def dump(self, max_entries_per_column: Optional[int] = None) -> str:
        """Multi-line rendering of the matrix, most significant column first."""
        lines = [f"AddendMatrix {self.name!r} width={self.width}"]
        for index in range(self.width - 1, -1, -1):
            column = self._columns[index]
            entries = [a.describe() for a in column]
            if max_entries_per_column is not None and len(entries) > max_entries_per_column:
                hidden = len(entries) - max_entries_per_column
                entries = entries[:max_entries_per_column] + [f"... (+{hidden} more)"]
            lines.append(f"  col {index:>3} (h={len(column):>2}): " + ", ".join(entries))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AddendMatrix({self.name!r}, width={self.width}, "
            f"addends={self.total_addends()}, max_height={self.max_height()})"
        )
