"""Radix-4 (modified) Booth recoding of two-operand products.

The paper's flow uses a plain AND-array to generate the partial products of a
multiplication; Booth recoding is the classic alternative, halving the number
of partial-product rows at the price of a per-bit encoder (one/two/neg
selection plus an XOR).  It is provided here as an optional extension so the
partial-product-generation ablation can quantify that trade-off inside the
same FA-tree allocation framework.

For an unsigned multiplicand X of n bits and an unsigned multiplier Y of m
bits, the multiplier is recoded into k = ceil((m+1)/2) radix-4 digits

    d_i = y[2i-1] + y[2i] - 2*y[2i+1]   in {-2, -1, 0, +1, +2}

(with y[-1] = 0 and y[j] = 0 for j >= m), so that X*Y = sum_i d_i * X * 4^i.
Each digit contributes one partial-product row:

    pp[i][j] = neg_i XOR ((x[j] AND one_i) OR (x[j-1] AND two_i)),  j = 0..n

where ``one_i`` / ``two_i`` / ``neg_i`` select |d_i| = 1, |d_i| = 2 and
d_i < 0.  A negative row is stored in one's complement, so each group adds the
two's-complement corrections

    + neg_i           at column 2i
    + NOT(neg_i)      at column 2i + n + 1
    - 2^(2i + n + 1)  as a constant

all of which fold into the existing addend-matrix machinery (signal addends
plus an accumulated integer constant).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bitmatrix.partial_products import BitSignal, ProductBit, ProductBitFactory
from repro.errors import AllocationError


def booth_digit_count(multiplier_width: int) -> int:
    """Number of radix-4 Booth digits needed for an unsigned multiplier."""
    if multiplier_width <= 0:
        raise AllocationError("multiplier width must be positive")
    return (multiplier_width + 2) // 2


def _multiplier_bit(factory: ProductBitFactory, bits: Sequence[BitSignal], index: int) -> BitSignal:
    """y[index] with y[-1] = 0 and zero extension above the MSB."""
    if index < 0 or index >= len(bits):
        return factory.constant(0)
    return bits[index]


def booth_partial_products(
    factory: ProductBitFactory,
    multiplicand: Sequence[BitSignal],
    multiplier: Sequence[BitSignal],
    max_column: int,
) -> Tuple[List[ProductBit], int]:
    """Booth-recoded partial products of ``multiplicand * multiplier``.

    Returns ``(product_bits, constant_correction)``: the single-bit addends
    (with their columns) and the integer constant that must be added to the
    matrix to complete the two's-complement corrections.  Bits whose column is
    ``>= max_column`` are dropped together with their matching corrections, so
    the result is exact modulo ``2**max_column``.
    """
    if not multiplicand or not multiplier:
        raise AllocationError("booth_partial_products requires non-empty operands")

    n = len(multiplicand)
    products: List[ProductBit] = []
    constant_correction = 0

    def x_bit(index: int) -> BitSignal:
        if index < 0 or index >= n:
            return factory.constant(0)
        return multiplicand[index]

    for group in range(booth_digit_count(len(multiplier))):
        base_column = 2 * group
        if base_column >= max_column:
            break
        y_low = _multiplier_bit(factory, multiplier, 2 * group - 1)
        y_mid = _multiplier_bit(factory, multiplier, 2 * group)
        y_high = _multiplier_bit(factory, multiplier, 2 * group + 1)

        one = factory.xor_of(y_mid, y_low)
        two = factory.and_of(factory.xor_of(y_high, y_mid), factory.not_of(one))
        neg = factory.and_of(y_high, factory.not_of(factory.and_of(y_mid, y_low)))

        # Row bits j = 0..n (n+1 bits cover the doubled multiplicand).
        for j in range(n + 1):
            column = base_column + j
            if column >= max_column:
                continue
            selected = factory.or_of(
                factory.and_of(x_bit(j), one), factory.and_of(x_bit(j - 1), two)
            )
            bit = factory.xor_of(selected, neg)
            if bit.net.is_constant and bit.net.const_value == 0:
                continue
            products.append(ProductBit(column, bit))

        # Two's-complement corrections for a (possibly) negative row.  When the
        # encoder proves the row non-negative (neg folds to constant 0) the
        # +neg, +NOT(neg) and -2^c corrections cancel and are all skipped.
        if neg.net.is_constant and neg.net.const_value == 0:
            continue
        if base_column < max_column:
            products.append(ProductBit(base_column, neg))
        sign_column = base_column + n + 1
        if sign_column < max_column:
            products.append(ProductBit(sign_column, factory.not_of(neg)))
            constant_correction -= 1 << sign_column

    return products, constant_correction
