"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so callers
can catch a single exception type at flow boundaries while still being able to
distinguish failure modes when they need to.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """Structural problem in a netlist (unknown cell, dangling net, cycle...)."""


class ExpressionError(ReproError):
    """Problem building, parsing or lowering an arithmetic expression."""


class AllocationError(ReproError):
    """Problem during FA-tree / compressor-tree allocation."""


class LibraryError(ReproError):
    """Problem with a technology library (missing cell, missing arc...)."""


class SimulationError(ReproError):
    """Problem during functional simulation or equivalence checking."""


class DesignError(ReproError):
    """Problem with a benchmark design specification."""


class ConfigError(DesignError):
    """Invalid flow configuration: unknown knob, bad value, unknown field.

    Derives from :class:`DesignError` because the legacy ``synthesize()``
    entry point historically raised ``DesignError`` for bad knob values;
    callers catching that keep working now that validation lives in
    :class:`repro.api.FlowConfig`.
    """


class PlaceError(DesignError):
    """Problem during physical design: fabric too small, corrupt placement.

    Derives from :class:`DesignError` so flow-boundary callers that catch
    design-level failures (bad knobs, impossible constraints) also catch an
    infeasible or structurally broken placement.
    """


class ExplorationError(ReproError):
    """Problem expanding or executing a design-space exploration sweep."""


class OptimizationError(ReproError):
    """Problem during netlist optimization (broken rewrite, failed equivalence)."""


class VerificationError(ReproError):
    """Problem in the verification subsystem (violated property, golden drift)."""


class MappingError(ReproError):
    """Problem during technology mapping (no template, broken basis, drift)."""
