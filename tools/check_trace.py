#!/usr/bin/env python
"""Validate observability artifacts: traces, history stores, event streams.

CI's obs-smoke job runs this against the traces of a ``synth`` and an
``explore`` run: the file must parse, satisfy the trace-event schema
(:func:`repro.obs.validate_trace_obj`) and — via ``--require`` — contain
the span names the instrumented flow is expected to emit.  The obs-history
job runs the ``--history`` mode against a run-history store directory:
every segment record must satisfy the record schema and the compacted
index must agree with the segments (:meth:`repro.obs.HistoryStore.check`).
The obs-live job runs the ``--events`` mode against a live telemetry
stream (``--events DIR`` output): every line must satisfy the
``repro.obs.events`` schema and every ``(run_id, pid)`` emitter must have
a strictly monotone ``seq`` (:func:`repro.obs.check_event_stream`).

Usage::

    PYTHONPATH=src python tools/check_trace.py trace.json \
        --require flow.run flow.frontend flow.optimize
    PYTHONPATH=src python tools/check_trace.py --history .history \
        --min-records 2
    PYTHONPATH=src python tools/check_trace.py --events run-events/events.jsonl

Exits non-zero (with one problem per line on stderr) on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def check_trace(path: str, require: List[str]) -> List[str]:
    """All problems with the trace file at ``path`` (empty list = valid)."""
    from repro.obs import validate_trace_obj

    try:
        with open(path, "r", encoding="utf-8") as handle:
            obj = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    problems = [f"{path}: {problem}" for problem in validate_trace_obj(obj)]
    if problems:
        return problems
    names = {
        event.get("name")
        for event in obj.get("traceEvents", ())
        if event.get("ph") == "X"
    }
    for name in require:
        if name not in names:
            problems.append(f"{path}: required span {name!r} missing")
    spans = [e for e in obj.get("traceEvents", ()) if e.get("ph") == "X"]
    if not any(e.get("args") for e in spans):
        problems.append(f"{path}: no span carries attributes")
    return problems


def check_history(path: str, min_records: int = 0) -> List[str]:
    """All problems with the history store at ``path`` (empty list = valid)."""
    from repro.obs import HistoryStore

    store = HistoryStore(path)
    problems = [f"{path}: {problem}" for problem in store.check()]
    if min_records:
        count = sum(1 for _record in store.iter_records())
        if count < min_records:
            problems.append(
                f"{path}: store holds {count} record(s), "
                f"expected at least {min_records}"
            )
    return problems


def check_events(path: str, min_events: int = 0) -> List[str]:
    """All problems with the event stream at ``path`` (empty list = valid)."""
    from repro.obs import check_event_stream, load_events

    try:
        events, problems = load_events(path)
    except OSError as exc:
        return [f"cannot load {path}: {exc}"]
    problems = [f"{path}: {problem}" for problem in problems]
    problems += [f"{path}: {problem}" for problem in check_event_stream(events)]
    if min_events and len(events) < min_events:
        problems.append(
            f"{path}: stream holds {len(events)} event(s), "
            f"expected at least {min_events}"
        )
    return problems


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="*", help="trace file(s) to validate")
    parser.add_argument(
        "--require",
        nargs="*",
        default=[],
        metavar="SPAN",
        help="span names that must be present in every file",
    )
    parser.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="validate the run-history store in DIR "
        "(record schema + index consistency)",
    )
    parser.add_argument(
        "--min-records",
        type=int,
        default=0,
        metavar="N",
        help="with --history: require at least N valid records",
    )
    parser.add_argument(
        "--events",
        nargs="*",
        default=[],
        metavar="FILE",
        help="validate live telemetry event stream(s) "
        "(schema + per-pid seq monotonicity)",
    )
    parser.add_argument(
        "--min-events",
        type=int,
        default=0,
        metavar="N",
        help="with --events: require at least N valid events per stream",
    )
    args = parser.parse_args(argv)
    if not args.trace and not args.history and not args.events:
        parser.error(
            "nothing to check: pass trace file(s), --history DIR "
            "and/or --events FILE"
        )
    problems: List[str] = []
    for path in args.trace:
        problems.extend(check_trace(path, args.require))
    if args.history:
        problems.extend(check_history(args.history, args.min_records))
    for path in args.events:
        problems.extend(check_events(path, args.min_events))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        for path in args.trace:
            print(f"{path}: OK")
        if args.history:
            print(f"{args.history}: OK")
        for path in args.events:
            print(f"{path}: OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
